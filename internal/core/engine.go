package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"laacad/internal/boundary"
	"laacad/internal/geom"
	"laacad/internal/parallel"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// RoundStats records one round of the deployment for convergence analysis
// (the series plotted in the paper's Fig. 6).
type RoundStats struct {
	Round int
	// MaxCircumradius and MinCircumradius are the extrema over nodes of the
	// circumradius of each node's dominating region (the smallest-enclosing-
	// circle radius R_i computed at the node's position for that round).
	MaxCircumradius float64
	MinCircumradius float64
	// MaxRhat is max_i max_{v∈V_i} ‖v−u_i‖ — the quantity R̂ that the
	// convergence proof (Prop. 4) shows non-increasing.
	MaxRhat float64
	// MaxMove is the largest distance any node moved this round.
	MaxMove float64
	// Moved is the number of nodes that moved more than ε.
	Moved int
	// Messages is the number of link-level messages sent this round
	// (Localized mode only).
	Messages int64
}

// Result is the outcome of a deployment run.
type Result struct {
	// Positions are the final node locations u*_i.
	Positions []geom.Point
	// Radii are the final sensing ranges r*_i (circumradius of each node's
	// dominating region about its final position).
	Radii []float64
	// Rounds is the number of rounds executed.
	Rounds int
	// Converged reports whether every node ended within ε of its Chebyshev
	// center (as opposed to hitting MaxRounds).
	Converged bool
	// Trace holds per-round statistics.
	Trace []RoundStats
	// Messages is the total link-level message count (Localized mode).
	Messages int64
	// Regions holds each node's final dominating region if
	// Config.KeepRegions was set.
	Regions [][]geom.Polygon
}

// MaxRadius returns max_i r*_i — the paper's objective R. A degenerate
// result with no radii reports 0.
func (r *Result) MaxRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinRadius returns min_i r*_i. A degenerate result with no radii reports 0.
func (r *Result) MinRadius() float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	m := r.Radii[0]
	for _, v := range r.Radii[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Engine executes LAACAD rounds. Create with New, then call Step until
// convergence or use Run. The Engine may be mutated between steps (e.g.
// RemoveNode for failure injection); it re-validates node counts.
type Engine struct {
	cfg      Config
	reg      *region.Region
	net      *wsn.Network
	detector boundary.Detector

	round     int
	converged bool
	trace     []RoundStats
	regions   [][]geom.Polygon // last round's dominating regions
	prevMsgs  int64
	// msgBase is the message count carried over from before a Resume; the
	// live network counter restarts at zero on every (re)construction.
	msgBase int64
	// finalMsgs counts messages charged by Finalize's out-of-round region
	// recomputation (the final radius collection of an unconverged run).
	// Result.Messages includes them, but Snapshot subtracts them: a
	// checkpoint is the state at a round boundary, and a run resumed from it
	// performs its own final collection — counting the interrupted run's
	// partial-result assembly too would double-charge it.
	finalMsgs int64
	// observer, if set, runs after every round of Run with that round's
	// statistics (see SetObserver).
	observer func(RoundStats) error

	// pool holds one Scratch per worker slot so the per-node geometry
	// pipeline runs without heap allocation; outs/nextBuf/movedBuf are the
	// reusable per-round buffers.
	pool     []*Scratch
	outs     []nodeOutcome
	nextBuf  []geom.Point
	movedBuf []movedNode

	// cache is the incremental dirty-set: each entry holds a node's last
	// computed outcome together with the exactness radius ρ of the search
	// that produced it. The outcome is a pure function of the positions
	// inside the ρ-ball around the node (see centralizedRegionScratch and
	// localizedRegionOf), so it is reused verbatim until some position
	// inside that ball changes — which collapses the long converged tail of
	// a deployment to near-zero work per round. In Localized mode each entry
	// additionally records the search's link-level message cost; a reuse
	// re-charges that cost so the per-round accounting stays exactly what
	// the eager protocol would have paid. cacheVer mirrors net.Version() so
	// out-of-band position writes (anything other than the engine's own
	// moves) invalidate — locally via the per-cell version diff when
	// possible, wholesale otherwise.
	cache    []nodeCache
	cacheVer uint64
	// rhoHint is each node's last known exactness radius, kept across
	// invalidations — the interference-prediction input of the colored
	// Sequential sweep (a stale hint only costs a wasted speculation, never
	// correctness; see planWave).
	rhoHint []float64
	// lastRhat is each node's R̂ from the most recent round — the same
	// max-vertex-distance a converged Finalize would measure over the node's
	// last region at its (unchanged) position. It lets Finalize assign final
	// radii without any region having been materialized (regions are only
	// compacted and retained under Config.KeepRegions).
	lastRhat []float64
	// hits counts cache reuses; atomic because the Synchronous fan-out
	// consults the cache from worker goroutines.
	hits atomic.Uint64
	// batchNodes counts dominating regions computed on the SoA batch kernel;
	// atomic because batch step functions run from worker goroutines.
	batchNodes atomic.Uint64

	// Level-scheduled colored-sweep (Sequential order) state. schedKeys is
	// the round's speculation schedule — packed (trigger, node) keys sorted
	// ascending, built once per round by planLevelSchedule — and schedPos the
	// consumption cursor; schedOn gates execution (planning declined, or the
	// waste cutoff latched off mid-round). schedWidthCap is the adaptive
	// per-wave width budget and schedLevel the per-node Kahn level of the
	// current plan (read only for same-round dirty-mover predecessors, so it
	// needs no clearing). waveBase* snapshot the speculation counters at
	// round start for the waste cutoff; waveCands/waveSel/waveMark are the
	// reusable planning buffers. waveHook, when set (tests), observes each
	// launched wave; schedHook observes each round's plan while the
	// disturber marks are still live.
	schedKeys        []int64
	schedPos         int
	schedOn          bool
	schedWidthCap    int
	schedLevel       []int32
	waveBaseComputed uint64
	waveBaseWasted   uint64
	waveCands        []int
	waveSel          []int
	waveMark         []uint8
	waveHook         func(from int, selected []int)
	schedHook        func(keys []int64)
	// wavePool serves every speculation wave of a sweep from one set of
	// parked goroutines (opened around the sweep, closed after it), and
	// waveFn is the one persistent fan-out closure — together they make a
	// wave launch allocation-free. waveRound/waveBoundary carry the
	// per-round arguments the closure reads.
	wavePool     parallel.Pool
	waveFn       func(w, idx int)
	waveRound    int
	waveBoundary []bool
	// commitHook, when set (tests), runs after every node's turn of a
	// Sequential sweep completes — the mid-round observation point at which
	// externally visible accounting must be exact and monotone.
	commitHook func(i int)

	// Incremental boundary flags (Localized mode with a PerNode detector and
	// the cache on): flagVals holds each node's flag as of the start of the
	// current round, flagValid marks entries whose γ-ball is provably
	// untouched since they were computed ("ball unchanged ⇒ flag unchanged",
	// the PerNode locality contract), and flagDirty lists the invalid ones so
	// the per-round repair pass touches only what a move disturbed — never
	// O(n). flagsLive marks rounds the cache is serving; flagScratch and
	// flagPool keep the repair evaluations allocation-free (serial and
	// parallel respectively).
	flagVals    []bool
	flagValid   []bool
	flagDirty   []int
	flagsLive   bool
	flagScratch boundary.Scratch
	flagPool    []*boundary.Scratch

	// statsEpoch mirrors wsn.Network.StatsEpoch: an out-of-band ResetStats
	// zeroes counters the cache's recorded costs and the per-round message
	// baseline were measured against, so the engine flushes and re-bases when
	// the epochs diverge.
	statsEpoch uint64

	// Out-of-band write localization: a snapshot of the grid's per-cell
	// mutation versions from the last time the cache was known in sync.
	// When an external position write bumps net.Version between rounds, the
	// engine diffs the live cell versions against this snapshot and
	// invalidates only entries whose ρ-ball can touch a changed cell,
	// instead of flushing wholesale (localFlush). The snapshot is patched
	// with the engine's own move cells after every round and recopied after
	// any full grid rebuild (its cell numbering belongs to one generation).
	cellSnap    []uint32
	cellSnapGen uint64
	cellSnapOK  bool

	// Grid-accelerated invalidation state. rhoBound[c] upper-bounds the
	// exactness radius ρ of the valid cache entries whose nodes currently
	// sit in grid cell c, and rhoMax is the global maximum — together they
	// let an inverse range query around a moved endpoint prune cells that
	// cannot possibly hold an affected entry. boundGen records the index
	// geometry (wsn.GridShape.Gen) the bounds were computed for; a full grid
	// rebuild invalidates the cell numbering, so a mismatch forces a bound
	// recomputation. seqBoundsLive tracks whether the bounds are being kept
	// current within a Sequential sweep (see invalidateAround).
	rhoBound      []float64
	rhoMax        float64
	boundGen      uint64
	seqBoundsLive bool
	counters      CacheCounters
}

// CacheCounters reports the work performed by the incremental cache's
// invalidation machinery — the observability surface behind the scaling
// contract that steady-state round cost is proportional to what moved, not
// what exists. Read it via Engine.CacheCounters; all counters are cumulative
// over the engine's lifetime.
type CacheCounters struct {
	// InverseScans and PairScans count invalidation passes executed as grid
	// inverse range queries vs. the dense pair-scan fallback (chosen only
	// when exactness balls are so large the grid window would cover
	// everything anyway).
	InverseScans, PairScans uint64
	// CellVisits and CandidateVisits count grid cells inspected and cache
	// entries distance-tested by inverse queries.
	CellVisits, CandidateVisits uint64
	// PairVisits counts cache entries visited by pair-scans.
	PairVisits uint64
	// BoundRebuilds counts recomputations of the per-cell ρ-bound array.
	BoundRebuilds uint64
	// CacheHits counts outcomes served from the dirty-set cache (all modes).
	CacheHits uint64
	// Waves, SpecComputed, SpecUsed and SpecWasted describe the colored
	// Sequential sweep: parallel speculation waves planned, entries computed
	// by them, entries consumed at their node's turn, and entries that a
	// committed move invalidated before use (wasted work; a Localized wasted
	// speculation voids its escrowed message cost, which the public counters
	// never saw — see wsn.BeginEscrow).
	Waves, SpecComputed, SpecUsed, SpecWasted uint64
	// FlagEvals counts per-node boundary-flag evaluations performed by the
	// incremental flag cache (Localized mode, PerNode detectors). Converged
	// steady-state rounds perform none — the counter-asserted contract that
	// boundary detection is no longer an O(n)-per-round term.
	FlagEvals uint64
	// LocalFlushes counts out-of-band position writes absorbed by the
	// per-cell version diff instead of a wholesale cache flush.
	LocalFlushes uint64
	// Levels and LevelWidthMax describe the level scheduler behind the
	// Sequential waves: cumulative interference-DAG layers laid out across
	// all planned rounds, and the widest single wave ever launched. A
	// mover-heavy round that parallelizes cleanly shows few levels with
	// large widths; Levels staying at zero means every Sequential round ran
	// serially.
	Levels, LevelWidthMax uint64
	// BatchCalls counts batched speculation-wave launches (fan-outs through
	// the SoA kernel), BatchNodes the dominating regions computed on that
	// kernel (all entry points, including serial turns and Synchronous
	// fan-outs), and BatchSizeHist buckets each wave's node count into
	// 1, 2–3, 4–7, 8–15, 16–31 and 32+.
	BatchCalls, BatchNodes uint64
	BatchSizeHist          [6]uint64
}

// batchSizeBucket maps a wave's node count to its BatchSizeHist bucket.
func batchSizeBucket(n int) int {
	b := 0
	for n > 1 && b < 5 {
		n >>= 1
		b++
	}
	return b
}

// CacheCounters returns the cumulative invalidation-work counters.
func (e *Engine) CacheCounters() CacheCounters {
	c := e.counters
	c.CacheHits = e.hits.Load()
	c.BatchNodes = e.batchNodes.Load()
	return c
}

// invalidationCounters returns only the counters that measure invalidation
// and index work — the subset that must stay flat across converged rounds
// (cache hits, by contrast, accumulate precisely then; kernel and scheduler
// counters track computation volume, not invalidation work).
func (c CacheCounters) invalidationCounters() CacheCounters {
	c.CacheHits = 0
	c.SpecUsed = 0
	c.Levels = 0
	c.LevelWidthMax = 0
	c.BatchCalls = 0
	c.BatchNodes = 0
	c.BatchSizeHist = [6]uint64{}
	return c
}

// nodeCache is one node's cached round outcome plus the exactness radius
// that bounds which position changes can invalidate it. Localized entries
// carry the recorded message cost of the search that produced the outcome
// (re-charged on every reuse) and the boundary flag it was computed under;
// spec marks an entry written by a speculation wave this round, whose cost
// sits in the node's wsn escrow — committed when the serial loop consumes
// the entry, voided if it dies first, so public counters never go backwards.
type nodeCache struct {
	valid    bool
	spec     bool
	boundary bool
	rho      float64
	cost     int64
	out      nodeOutcome
}

// movedNode records one move for application and cache invalidation: the ID
// drives the incremental position write, and both endpoints matter for
// invalidation, because a node entering an exactness ball invalidates it by
// its new position and a node leaving it by its old one.
type movedNode struct {
	id       int
	old, new geom.Point
}

// ErrStop is the sentinel an Observer returns to stop a run early and
// cleanly: Run finalizes the deployment and returns the partial Result with
// a nil error. Any other observer error also stops the run but is returned
// (alongside the partial Result) to the caller.
var ErrStop = errors.New("core: observer stopped the run")

// New creates an Engine deploying the given initial node positions over reg.
// Initial positions outside the region are clamped inside.
func New(reg *region.Region, initial []geom.Point, cfg Config) (*Engine, error) {
	if reg == nil {
		return nil, fmt.Errorf("core: nil region")
	}
	if err := cfg.validate(len(initial)); err != nil {
		return nil, err
	}
	if cfg.RingCap == 0 {
		cfg.RingCap = reg.BBox().Diagonal() + cfg.Gamma
	}
	pos := make([]geom.Point, len(initial))
	for i, p := range initial {
		pos[i] = reg.ClampInside(p)
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		// Centralized mode has no radio range; gamma only floors the spatial
		// index's cell side. Keep the floor far below the deployment scale so
		// the index's occupancy-adaptive rule (cell ≈ span/√n) decides — at
		// 10k+ nodes a diagonal-scale floor would put hundreds of nodes in
		// every cell. Query answers are independent of cell geometry, so this
		// is purely an indexing choice.
		gamma = reg.BBox().Diagonal() * 1e-3
	}
	det := cfg.Detector
	if det == nil {
		det = boundary.AngularGap{}
	}
	net := wsn.New(pos, gamma)
	// The engine clamps every position into reg, so the region's bounding
	// box bounds the deployment for its whole lifetime: seeding the spatial
	// index with it means expansion-phase moves (a corner pile spreading
	// out) never exit the grid bounds and never force a rebuild.
	net.SetBoundsHint(reg.BBox())
	return &Engine{
		cfg:      cfg,
		reg:      reg,
		net:      net,
		detector: det,
	}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Network exposes the underlying WSN substrate (positions, message stats).
func (e *Engine) Network() *wsn.Network { return e.net }

// Positions returns a copy of the current node positions.
func (e *Engine) Positions() []geom.Point { return e.net.Positions() }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Converged reports whether the last Step found every node within ε of its
// Chebyshev center.
func (e *Engine) Converged() bool { return e.converged }

// Trace returns the per-round statistics collected so far.
func (e *Engine) Trace() []RoundStats { return e.trace }

// nodeOutcome is one node's contribution to a round. Each outcome depends
// only on the positions at the start of the round (Synchronous order), so
// outcomes can be computed independently and in any order; the round's
// statistics are reduced from them in node order afterwards.
type nodeOutcome struct {
	polys    []geom.Polygon
	next     geom.Point
	ri       float64 // circumradius of the dominating region
	rhat     float64 // max vertex distance from the current position
	moveDist float64
	moved    bool
	empty    bool // pathological empty region: node stands still
}

// stepNodeCentralized computes node i's dominating region, Chebyshev center
// and motion target from the current positions (Centralized mode). The
// geometry pipeline runs entirely on s; with Config.KeepRegions set the
// outcome's polygons are compacted into owned storage so they survive the
// scratch's reuse (everything any other consumer needs — the circumradius,
// R̂, the move — is scalar, so by default no region is materialized). The second return
// value is the exactness radius ρ of the expanding search — the cache
// invalidation radius. Since the deterministic-Welzl change, the outcome is
// a pure function of (positions within ρ of u_i, region, config): no RNG
// stream is consumed.
func (e *Engine) stepNodeCentralized(i int, s *Scratch) (nodeOutcome, float64) {
	if e.batchOn() {
		return e.stepNodeCentralizedBatch(i, s)
	}
	ui := e.net.Position(i)
	polys, rho, rhat := centralizedRegionScratch(e.net, e.reg, i, e.cfg.K, s)
	if len(polys) == 0 {
		// Pathological (e.g. node crowded out numerically): stand still.
		return nodeOutcome{next: ui, empty: true}, rho
	}
	ci, ri := ChebyshevOfRegion(polys, s)
	out := nodeOutcome{
		next: ui,
		ri:   ri,
		rhat: rhat,
	}
	if e.cfg.KeepRegions {
		out.polys = voronoi.CompactRegion(polys)
	}
	e.finishMove(ui, ci, &out)
	return out, rho
}

// stepNodeLocalized computes node i's outcome with Algorithm 2. rng is the
// node's private stream for this round (see nodeRNG); it drives message-loss
// sampling. The second return value is the search's invalidation radius
// (see localizedRegionOf) — with loss sampling off, the outcome and its
// exact message cost are a pure function of the positions inside that ball
// plus the boundary flag, which is what makes Localized outcomes cacheable
// without falsifying the accounting.
func (e *Engine) stepNodeLocalized(i int, isBoundary bool, rng *rand.Rand, s *Scratch) (nodeOutcome, float64) {
	if e.batchOn() {
		return e.stepNodeLocalizedBatch(i, isBoundary, rng, s)
	}
	ui := e.net.Position(i)
	polys, inv := e.localizedRegionOf(i, isBoundary, rng, s)
	if len(polys) == 0 {
		return nodeOutcome{next: ui, empty: true}, inv
	}
	ci, ri := ChebyshevOfRegion(polys, s)
	out := nodeOutcome{
		next: ui,
		ri:   ri,
		rhat: voronoi.MaxDistFrom(ui, polys),
	}
	if e.cfg.KeepRegions {
		out.polys = voronoi.CompactRegion(polys)
	}
	e.finishMove(ui, ci, &out)
	return out, inv
}

// finishMove applies the motion rule (step α toward the clamped Chebyshev
// center, stand still within ε) to an outcome under construction.
func (e *Engine) finishMove(ui, ci geom.Point, out *nodeOutcome) {
	ci = e.reg.ClampInside(ci)
	if d := ui.Dist(ci); d > e.cfg.Epsilon {
		target := ui.Add(ci.Sub(ui).Scale(e.cfg.Alpha))
		target = e.reg.ClampInside(target)
		out.next = target
		out.moved = true
		out.moveDist = ui.Dist(target)
	}
}

// stepNodeAny dispatches one node's round computation, consulting the
// dirty-set cache first when it is enabled. Cache entries are written only
// by the worker that owns node i this round, so the fan-out needs no
// locking.
//
// A Localized hit re-charges the entry's recorded message cost — reusing the
// outcome must cost exactly what re-running the search would have, or
// Result.Messages stops being faithful to the protocol. The exception is an
// entry speculated earlier this same round (spec): its search already ran
// with its charges deferred into the node's escrow, so consuming it commits
// the escrow — the instant the eager serial sweep would have charged. A
// Localized hit also requires the boundary flag the entry was computed under
// to still hold; under the incremental flag cache that comparison always
// passes for a valid entry — the entry's ρ-ball covers the γ-ball (ρ ≥ γ),
// so a valid entry implies an unchanged flag — while global detectors
// compare against the freshly computed round array.
func (e *Engine) stepNodeAny(i, round int, isBoundary []bool, s *Scratch, cacheOn bool) nodeOutcome {
	if e.cfg.Mode == Localized {
		if cacheOn {
			if c := &e.cache[i]; c.valid && c.boundary == isBoundary[i] {
				e.hits.Add(1)
				if c.spec {
					c.spec = false
					e.counters.SpecUsed++
					e.net.CommitEscrow(i)
				} else if c.cost != 0 {
					e.net.Charge(i, c.cost)
				}
				return c.out
			}
			return e.computeEntry(i, round, isBoundary, s, false)
		}
		b := isBoundary != nil && isBoundary[i]
		out, _ := e.stepNodeLocalized(i, b, e.lossRNG(round, i), s)
		return out
	}
	if cacheOn {
		if c := &e.cache[i]; c.valid {
			e.hits.Add(1)
			if c.spec {
				c.spec = false
				e.counters.SpecUsed++
			}
			return c.out
		}
		return e.computeEntry(i, round, isBoundary, s, false)
	}
	out, _ := e.stepNodeCentralized(i, s)
	return out
}

// computeEntry computes node i's outcome from the current positions and
// installs it as a cache entry (speculative when spec is set — the colored
// sweep's waves write through here from worker goroutines; entry i is only
// ever written by the worker owning i, so no locking). Localized entries
// measure the search's link-level cost: a serial computation diffs the
// node's own message counter around the search — every charge of an
// expanding-ring search is attributed to the searching node, so the diff is
// exact even while other workers charge their own searches concurrently — a
// speculative one instead runs the search inside the node's wsn escrow, so
// the cost is measured without ever reaching the public counters: an
// external Stats read mid-wave sees only committed work, exact and monotone.
func (e *Engine) computeEntry(i, round int, isBoundary []bool, s *Scratch, spec bool) nodeOutcome {
	if e.cfg.Mode == Localized {
		b := isBoundary[i]
		var out nodeOutcome
		var inv float64
		var cost int64
		if spec {
			e.net.BeginEscrow(i)
			out, inv = e.stepNodeLocalized(i, b, e.lossRNG(round, i), s)
			cost = e.net.EndEscrow(i)
		} else {
			before := e.net.NodeMessages(i)
			out, inv = e.stepNodeLocalized(i, b, e.lossRNG(round, i), s)
			cost = e.net.NodeMessages(i) - before
		}
		e.cache[i] = nodeCache{valid: true, spec: spec, boundary: b, rho: inv, cost: cost, out: out}
		e.rhoHint[i] = inv
		return out
	}
	out, rho := e.stepNodeCentralized(i, s)
	e.cache[i] = nodeCache{valid: true, spec: spec, rho: rho, out: out}
	e.rhoHint[i] = rho
	return out
}

// cacheEnabled reports whether the dirty-set cache applies. Centralized mode
// always caches (unless disabled); Localized mode caches only when message
// loss is off — loss draws are per-round randomness, so an outcome computed
// last round is not the outcome this round's search would produce even over
// identical positions.
func (e *Engine) cacheEnabled() bool {
	if e.cfg.DisableCache {
		return false
	}
	if e.cfg.Mode == Localized {
		return e.cfg.LossRate == 0
	}
	return true
}

// ensureBuffers sizes the per-round buffers and the dirty-set cache for n
// nodes. A node-count change (AddNode/RemoveNode, which also drop the cache
// explicitly) discards the cache wholesale here too: its indices belong to
// the old numbering.
func (e *Engine) ensureBuffers(n int) {
	if cap(e.outs) < n {
		e.outs = make([]nodeOutcome, n)
		e.nextBuf = make([]geom.Point, n)
	}
	e.outs = e.outs[:n]
	e.nextBuf = e.nextBuf[:n]
	if cap(e.lastRhat) < n {
		e.lastRhat = make([]float64, n)
	}
	e.lastRhat = e.lastRhat[:n]
	if len(e.cache) != n {
		e.cache = make([]nodeCache, n)
		e.rhoHint = make([]float64, n)
		e.cacheVer = e.net.Version()
		// The cell-version snapshot indexes entries by the old numbering's
		// occupancy; a node-count change makes it meaningless.
		e.cellSnapOK = false
	}
}

// ensurePool sizes the per-worker scratch pool.
func (e *Engine) ensurePool(workers int) {
	for len(e.pool) < workers {
		e.pool = append(e.pool, NewScratch())
	}
}

// repairFlags brings the incremental boundary-flag cache up to date with the
// current (start-of-round) positions and returns the full flag array. Only
// nodes on the dirty list — those whose γ-ball a move endpoint, an external
// write, or a flush touched — are re-evaluated, so a converged round repairs
// nothing and a few-movers round repairs O(disturbed), never O(n). A large
// dirty set (first round, topology change) fans the evaluations out across
// the worker pool; each evaluation reads only start-of-round positions, so
// the result is independent of worker count and evaluation order.
func (e *Engine) repairFlags(pn boundary.PerNode, n int) []bool {
	if len(e.flagVals) != n {
		// Node count changed (or first use): the indices belong to another
		// numbering, so every flag is re-evaluated.
		e.flagVals = make([]bool, n)
		e.flagValid = make([]bool, n)
		e.flagDirty = e.flagDirty[:0]
		for i := 0; i < n; i++ {
			e.flagDirty = append(e.flagDirty, i)
		}
	}
	dirty := e.flagDirty
	if len(dirty) == 0 {
		return e.flagVals
	}
	e.net.Rebuild()
	scratched, scratchOK := pn.(boundary.PerNodeScratch)
	if workers := parallel.Workers(e.cfg.Workers); scratchOK && workers > 1 && len(dirty) >= 256 {
		for len(e.flagPool) < workers {
			e.flagPool = append(e.flagPool, &boundary.Scratch{})
		}
		parallel.ForWorker(len(dirty), workers, func(w, idx int) {
			i := dirty[idx]
			e.flagVals[i] = scratched.BoundaryNodeScratch(e.net, i, e.flagPool[w])
			e.flagValid[i] = true
		})
	} else {
		for _, i := range dirty {
			if scratchOK {
				e.flagVals[i] = scratched.BoundaryNodeScratch(e.net, i, &e.flagScratch)
			} else {
				e.flagVals[i] = pn.BoundaryNode(e.net, i)
			}
			e.flagValid[i] = true
		}
	}
	e.counters.FlagEvals += uint64(len(dirty))
	e.flagDirty = e.flagDirty[:0]
	return e.flagVals
}

// markFlagsNear invalidates every cached boundary flag whose γ-ball,
// inflated by slack, contains p — the flag-cache analogue of invalidateNear,
// run for both endpoints of every move (a neighbor entering the ball changes
// the flag input by its new position, one leaving it by its old one; the
// mover itself is always within distance zero of its own new endpoint). The
// invalidation radius is exactly the PerNode locality contract's γ, so a
// flag left valid provably has an unchanged input set.
func (e *Engine) markFlagsNear(p geom.Point, slack float64) {
	if len(e.flagVals) != e.net.Len() {
		return // no live flag cache (or stale numbering; repair resets it)
	}
	r := e.net.Gamma() + slack
	r2 := r * r
	if 2*e.net.CellWindowSize(r) >= len(e.flagVals) {
		// Degenerate geometry: the window covers the grid, scan densely.
		for j := range e.flagVals {
			if e.flagValid[j] && e.net.Position(j).Dist2(p) <= r2 {
				e.flagValid[j] = false
				e.flagDirty = append(e.flagDirty, j)
			}
		}
		return
	}
	e.net.VisitCellsWithin(p, r, func(ci int) {
		if e.net.CellDist2(ci, p) > r2 {
			return
		}
		for _, j := range e.net.CellNodes(ci) {
			if e.flagValid[j] && e.net.Position(int(j)).Dist2(p) <= r2 {
				e.flagValid[j] = false
				e.flagDirty = append(e.flagDirty, int(j))
			}
		}
	})
}

// flushCache invalidates every cache entry (and every cached boundary flag)
// and re-syncs with the network's mutation counter. It runs only between
// rounds, when no speculative entry can exist (waves live and die within one
// sweep), so no escrow is outstanding.
func (e *Engine) flushCache() {
	for i := range e.cache {
		e.cache[i].valid = false
	}
	for i := range e.flagValid {
		if e.flagValid[i] {
			e.flagValid[i] = false
			e.flagDirty = append(e.flagDirty, i)
		}
	}
	e.cacheVer = e.net.Version()
}

// dropEntry invalidates node j's cache entry. An unconsumed speculative
// entry dying here means its search ran for nothing: its escrowed message
// cost is voided — the public counters never saw it, so the round's visible
// accounting is exactly what the eager serial sweep would have charged, at
// every instant, with no refund ever needed.
func (e *Engine) dropEntry(j int) {
	c := &e.cache[j]
	if c.spec {
		c.spec = false
		e.counters.SpecWasted++
		e.net.VoidEscrow(j)
	}
	c.valid = false
}

// invalidateMoved drops every cache entry whose exactness ball contains
// either endpoint of a recorded move: a node entering the ball changes the
// site set by its new position, a node leaving it by its old one, and any
// move inside it changes a site's coordinates. Entries outside stay valid —
// the expanding search provably never read those positions, so recomputing
// would reproduce the cached outcome bit for bit.
//
// Strategy: the balls live in the same space as the spatial index, so each
// moved endpoint runs an inverse range query against the grid — visit only
// cells within the largest exactness radius, prune those whose per-cell
// ρ-bound cannot reach the endpoint, and distance-test the survivors. That
// makes invalidation O(moved × local). When the balls are so large that the
// query window would cover the whole grid anyway (early rounds, sparse
// neighborhoods), the dense O(valid × moved) pair-scan is cheaper and is
// used as the fallback; both strategies invalidate exactly the same set.
func (e *Engine) invalidateMoved() {
	if len(e.movedBuf) == 0 {
		return
	}
	valid := 0
	rhoMax := 0.0
	for i := range e.cache {
		if c := &e.cache[i]; c.valid {
			valid++
			if c.rho > rhoMax {
				rhoMax = c.rho
			}
		}
	}
	if valid == 0 {
		return
	}
	if 2*e.net.CellWindowSize(rhoMax) >= valid {
		e.pairScanMoved()
		return
	}
	e.rebuildRhoBounds()
	e.counters.InverseScans++
	for _, m := range e.movedBuf {
		e.invalidateNear(m.old, 0)
		e.invalidateNear(m.new, 0)
	}
}

// pairScanMoved is the dense invalidation fallback: every valid entry is
// tested against every recorded move.
func (e *Engine) pairScanMoved() {
	e.counters.PairScans++
	for i := range e.cache {
		c := &e.cache[i]
		if !c.valid {
			continue
		}
		e.counters.PairVisits++
		ui := e.net.Position(i) // unchanged: moved nodes were invalidated already
		r2 := c.rho * c.rho
		for _, m := range e.movedBuf {
			if ui.Dist2(m.old) <= r2 || ui.Dist2(m.new) <= r2 {
				e.dropEntry(i)
				break
			}
		}
	}
}

// rebuildRhoBounds recomputes the per-cell ρ-bound array (and rhoMax) from
// the valid cache entries, in O(n + cells), and stamps it with the index
// generation it was computed against.
func (e *Engine) rebuildRhoBounds() {
	shape := e.net.GridShape()
	ncells := shape.NX * shape.NY
	if cap(e.rhoBound) < ncells {
		e.rhoBound = make([]float64, ncells)
	}
	e.rhoBound = e.rhoBound[:ncells]
	clear(e.rhoBound)
	e.rhoMax = 0
	for i := range e.cache {
		c := &e.cache[i]
		if !c.valid {
			continue
		}
		ci := e.net.CellOfNode(i)
		if c.rho > e.rhoBound[ci] {
			e.rhoBound[ci] = c.rho
		}
		if c.rho > e.rhoMax {
			e.rhoMax = c.rho
		}
	}
	e.boundGen = shape.Gen
	e.counters.BoundRebuilds++
}

// invalidateNear runs one inverse range query: drop every valid cache entry
// whose exactness ball, inflated by slack, contains p. The cell-window walk
// itself lives with the index (wsn.VisitCellsWithin); here each visited cell
// is pruned with the per-cell ρ-bound (an upper bound, so pruning can only
// skip cells that provably hold no affected entry) and surviving candidates
// get the exact distance test, which with slack 0 — the moved-endpoint case —
// matches the pair-scan predicate bit for bit. A positive slack turns the
// point test into "ball touches a square of half-diagonal slack around p",
// the conservative form localFlush needs for changed grid cells.
func (e *Engine) invalidateNear(p geom.Point, slack float64) {
	e.net.VisitCellsWithin(p, e.rhoMax+slack, func(ci int) {
		b := e.rhoBound[ci]
		if b == 0 {
			return
		}
		if r := b + slack; e.net.CellDist2(ci, p) > r*r {
			return
		}
		e.counters.CellVisits++
		for _, j := range e.net.CellNodes(ci) {
			c := &e.cache[j]
			if !c.valid {
				continue
			}
			e.counters.CandidateVisits++
			if r := c.rho + slack; e.net.Position(int(j)).Dist2(p) <= r*r {
				e.dropEntry(int(j))
			}
		}
	})
}

// localFlush attempts to absorb out-of-band position writes locally: diff
// the grid's per-cell mutation versions against the snapshot taken when the
// cache was last in sync, and invalidate only entries whose exactness ball
// (inflated by the cell half-diagonal) can touch a changed cell. Both
// endpoints of any external move live in bumped cells, so every affected
// entry is dropped; entries farther away provably never read the rewritten
// positions and stay valid — which is what makes interactive what-if editing
// of a converged deployment cheap. It reports false when localization is
// impossible — no snapshot, a full rebuild renumbered the cells (node
// removal, bulk rewrite, bounds exit), or so many cells changed that a
// wholesale flush is the cheaper response — and the caller falls back to
// flushCache.
func (e *Engine) localFlush() bool {
	if !e.cellSnapOK || e.cellSnapGen != e.net.GridShape().Gen {
		return false
	}
	changed := e.waveCands[:0] // reuse: the wave buffer is idle between rounds
	for ci := range e.cellSnap {
		if e.net.CellVersionAt(ci) != e.cellSnap[ci] {
			changed = append(changed, ci)
		}
	}
	e.waveCands = changed[:0]
	if len(changed)*8 >= len(e.cellSnap) {
		return false
	}
	e.rebuildRhoBounds()
	e.counters.LocalFlushes++
	for _, ci := range changed {
		center, slack := e.net.CellCenter(ci)
		e.invalidateNear(center, slack)
		e.markFlagsNear(center, slack)
		e.cellSnap[ci] = e.net.CellVersionAt(ci)
	}
	e.cacheVer = e.net.Version()
	return true
}

// syncCellSnapshot brings the per-cell version snapshot up to date with the
// round's own writes. After a full rebuild the cell numbering is new, so the
// snapshot is recopied wholesale (that round already paid O(n)); otherwise
// only the movers' cells are patched, so a converged round patches nothing.
func (e *Engine) syncCellSnapshot() {
	if gen := e.net.GridShape().Gen; !e.cellSnapOK || gen != e.cellSnapGen {
		e.cellSnapGen, e.cellSnap = e.net.AppendCellVersions(e.cellSnap)
		e.cellSnapOK = true
		return
	}
	for _, m := range e.movedBuf {
		if ci := e.net.CellIndex(m.old); ci >= 0 {
			e.cellSnap[ci] = e.net.CellVersionAt(ci)
		}
		if ci := e.net.CellIndex(m.new); ci >= 0 {
			e.cellSnap[ci] = e.net.CellVersionAt(ci)
		}
	}
}

// Step executes one LAACAD round and returns its statistics. The returned
// bool is true once the deployment has converged (no node needed to move
// more than ε this round). With Config.Order == Synchronous all moves apply
// at the end of the round and the per-node region computations fan out
// across Config.Workers goroutines; with Sequential each node's move is
// visible to the nodes processed after it — the commit order stays serial,
// but the expensive region recomputations are precomputed in parallel by
// the colored sweep's speculation waves (see colored.go). Either way the
// result is bit-identical for every worker count.
func (e *Engine) Step() (RoundStats, bool) {
	n := e.net.Len()
	round := e.round + 1
	stats := RoundStats{
		Round:           round,
		MinCircumradius: math.Inf(1),
	}
	e.ensureBuffers(n)
	cacheOn := e.cacheEnabled()
	if ep := e.net.StatsEpoch(); ep != e.statsEpoch {
		// An out-of-band ResetStats zeroed the counters this engine's
		// accounting state was measured against. Re-base the per-round
		// message baseline (or the first post-reset round would report a
		// negative count), and in Localized mode drop the cached recorded
		// costs: the eager protocol would re-run every search after a reset,
		// so the cached engine recomputes and re-measures too.
		e.statsEpoch = ep
		e.prevMsgs = e.net.MessageCount()
		if cacheOn && e.cfg.Mode == Localized {
			e.flushCache()
		}
	}
	if cacheOn && e.cacheVer != e.net.Version() {
		// Positions were written behind the engine's back (direct Network
		// mutation, resume restore). When the per-cell version diff can
		// localize the damage, only the entries whose exactness ball touches
		// a changed cell are dropped; otherwise (renumbering, rebuild,
		// wholesale rewrites) nothing cached can be trusted.
		if !e.localFlush() {
			e.flushCache()
		}
	}
	sequential := e.cfg.Order == Sequential
	var isBoundary []bool
	e.flagsLive = false
	if e.cfg.Mode == Localized {
		if pn, ok := e.detector.(boundary.PerNode); ok && cacheOn {
			// Per-node-local detector + cache: serve this round's flags from
			// the incremental cache, re-evaluating only nodes whose γ-ball a
			// move (or out-of-band write) touched since their flag was last
			// computed — "ball unchanged ⇒ flag unchanged" is the PerNode
			// locality contract. The repaired array holds start-of-round
			// truth for every node, which is exactly what the eager engine's
			// wholesale Boundary pass would produce: a Sequential sweep's
			// mid-round recomputes read the same start-of-round flags in
			// both engines, so trajectories and accounting stay bit-equal.
			isBoundary = e.repairFlags(pn, n)
			e.flagsLive = true
		} else {
			isBoundary = e.detector.Boundary(e.net)
		}
	}
	outs := e.outs
	e.movedBuf = e.movedBuf[:0]
	if sequential {
		workers := parallel.Workers(e.cfg.Workers)
		e.ensurePool(workers)
		// The per-cell ρ-bounds are rebuilt lazily by the first move of the
		// sweep and then kept current entry-by-entry (see invalidateAround),
		// so a converged sweep pays nothing for them.
		e.seqBoundsLive = false
		e.waveBaseComputed = e.counters.SpecComputed
		e.waveBaseWasted = e.counters.SpecWasted
		e.schedOn = false
		if cacheOn && workers > 1 {
			// Level-scheduled colored sweep: lay the round's dirty set out
			// as an interference DAG once, then fill upcoming entries in
			// parallel waves as the scan passes each node's trigger. The
			// serial loop below consumes an entry only if it is still valid
			// at the node's turn, so the sweep's fixed point and trace are
			// bit-identical to the one-worker sweep.
			e.planLevelSchedule(workers)
			if e.schedOn {
				// One set of parked worker goroutines serves every wave of
				// the sweep — a wave launch allocates nothing.
				e.wavePool.Open(workers)
			}
		}
		for i := 0; i < n; i++ {
			if e.schedOn {
				e.speculateAt(i, round, isBoundary)
			}
			outs[i] = e.stepNodeAny(i, round, isBoundary, e.pool[0], cacheOn)
			if cacheOn && e.seqBoundsLive {
				if c := &e.cache[i]; c.valid {
					e.noteRhoBound(i, c.rho)
				}
			}
			if ui := e.net.Position(i); outs[i].next != ui {
				e.net.SetPosition(i, outs[i].next)
				e.movedBuf = append(e.movedBuf, movedNode{id: i, old: ui, new: outs[i].next})
				if cacheOn {
					e.invalidateAround(i, ui, outs[i].next)
				}
				if e.flagsLive {
					// Flags whose γ-ball either endpoint disturbs repair at
					// the start of the next round; the values this sweep is
					// reading stay frozen at start-of-round truth.
					e.markFlagsNear(ui, 0)
					e.markFlagsNear(outs[i].next, 0)
				}
				e.cacheVer = e.net.Version()
			}
			if e.commitHook != nil {
				e.commitHook(i)
			}
		}
		e.wavePool.Close()
	} else {
		e.net.Rebuild() // build the spatial index once, before the fan-out
		workers := parallel.Workers(e.cfg.Workers)
		e.ensurePool(workers)
		parallel.ForWorker(n, workers, func(w, i int) {
			outs[i] = e.stepNodeAny(i, round, isBoundary, e.pool[w], cacheOn)
		})
	}

	var polysPerNode [][]geom.Polygon
	if e.cfg.KeepRegions {
		polysPerNode = make([][]geom.Polygon, n)
	}
	moved := 0
	for i := range outs {
		o := &outs[i]
		if polysPerNode != nil {
			polysPerNode[i] = o.polys
		}
		e.lastRhat[i] = o.rhat
		if o.empty {
			continue
		}
		if o.ri > stats.MaxCircumradius {
			stats.MaxCircumradius = o.ri
		}
		if o.ri < stats.MinCircumradius {
			stats.MinCircumradius = o.ri
		}
		if o.rhat > stats.MaxRhat {
			stats.MaxRhat = o.rhat
		}
		if o.moved {
			moved++
			if o.moveDist > stats.MaxMove {
				stats.MaxMove = o.moveDist
			}
			if !sequential {
				if cacheOn {
					e.cache[i].valid = false // own position is about to change
				}
				e.movedBuf = append(e.movedBuf, movedNode{id: i, old: e.net.Position(i), new: o.next})
			}
		}
	}
	if math.IsInf(stats.MinCircumradius, 1) {
		stats.MinCircumradius = 0
	}
	if !sequential && len(e.movedBuf) > 0 {
		if len(e.movedBuf)*4 >= n {
			// Most of the network moved (the active phase): one bulk write
			// plus a CSR counting-sort rebuild has better constants than
			// that many incremental bucket edits.
			next := e.nextBuf
			for i := range outs {
				next[i] = outs[i].next
			}
			e.net.SetPositions(next)
		} else {
			// Apply only what moved: each write is an incremental index
			// update (two cell buckets), so the converged tail writes
			// nothing and a few movers cost O(moved), never an O(n) grid
			// rebuild. Both branches leave the index answering queries
			// identically, so the split is invisible to trajectories.
			for _, m := range e.movedBuf {
				e.net.SetPosition(m.id, m.new)
			}
		}
		if cacheOn {
			e.invalidateMoved()
		}
		if e.flagsLive {
			for _, m := range e.movedBuf {
				e.markFlagsNear(m.old, 0)
				e.markFlagsNear(m.new, 0)
			}
		}
		e.cacheVer = e.net.Version()
	}
	if cacheOn {
		e.syncCellSnapshot()
	}
	e.regions = polysPerNode
	e.round++
	stats.Moved = moved
	cur := e.net.MessageCount()
	stats.Messages = cur - e.prevMsgs
	e.prevMsgs = cur
	e.trace = append(e.trace, stats)
	e.converged = moved == 0
	return stats, e.converged
}

// invalidateAround is the Sequential-order form of invalidateMoved: applied
// immediately after each position change, so nodes processed later in the
// same round see a cache that reflects every earlier move — exactly
// mirroring what the eager Gauss–Seidel sweep would recompute. The first
// move of a sweep builds the per-cell ρ-bounds; entries recomputed later in
// the same sweep feed them via noteRhoBound, so the bounds stay upper bounds
// throughout and the inverse queries never miss an affected entry.
func (e *Engine) invalidateAround(i int, old, new geom.Point) {
	e.dropEntry(i)
	boundsStale := !e.seqBoundsLive || e.boundGen != e.net.GridShape().Gen
	rhoMax := e.rhoMax
	if boundsStale {
		// A cheap O(valid) scan decides the strategy; the per-cell bound
		// array is only built if the inverse branch is actually taken.
		rhoMax = 0
		for j := range e.cache {
			if c := &e.cache[j]; c.valid && c.rho > rhoMax {
				rhoMax = c.rho
			}
		}
	}
	if 2*e.net.CellWindowSize(rhoMax) >= len(e.cache) {
		// Degenerate balls: the dense scan is cheaper than a whole-grid walk.
		e.counters.PairScans++
		for j := range e.cache {
			c := &e.cache[j]
			if !c.valid {
				continue
			}
			e.counters.PairVisits++
			uj := e.net.Position(j)
			r2 := c.rho * c.rho
			if uj.Dist2(old) <= r2 || uj.Dist2(new) <= r2 {
				e.dropEntry(j)
			}
		}
		return
	}
	if boundsStale {
		e.rebuildRhoBounds()
		e.seqBoundsLive = true
	}
	e.counters.InverseScans++
	e.invalidateNear(old, 0)
	e.invalidateNear(new, 0)
}

// noteRhoBound folds one freshly written cache entry into the live per-cell
// ρ-bounds during a Sequential sweep. A grid rebuild between moves renumbers
// the cells, in which case the bounds are recomputed wholesale.
func (e *Engine) noteRhoBound(i int, rho float64) {
	if e.boundGen != e.net.GridShape().Gen {
		e.rebuildRhoBounds()
		return
	}
	ci := e.net.CellOfNode(i)
	if rho > e.rhoBound[ci] {
		e.rhoBound[ci] = rho
	}
	if rho > e.rhoMax {
		e.rhoMax = rho
	}
}

// SetObserver installs a per-round callback invoked by Run after every
// completed round, with that round's statistics. The callback runs between
// rounds, so it may safely inspect the engine, take a Snapshot, or mutate
// topology (AddNode/RemoveNode for failure injection); determinism is
// preserved because each round's randomness depends only on (Seed, round,
// node), never on wall-clock or scheduling. Returning ErrStop ends the run
// cleanly; returning any other error aborts it with a partial Result. A nil
// observer removes the callback.
func (e *Engine) SetObserver(fn func(RoundStats) error) { e.observer = fn }

// Run executes Step until convergence, MaxRounds, ctx cancellation, or an
// observer-requested stop, then assigns final sensing ranges and returns the
// Result.
//
// Cancellation is checked between rounds: when ctx is done, Run finalizes
// whatever progress was made and returns the partial Result together with
// ctx's error, so callers can distinguish an interrupted run (res non-nil,
// errors.Is(err, context.Canceled) or context.DeadlineExceeded) from a
// completed one (err == nil). A Snapshot taken after an interrupted Run
// resumes the remaining rounds bit-identically (see Snapshot/Resume).
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	for e.round < e.cfg.MaxRounds {
		// Checked at the top (not after Step) so an engine that is already
		// converged — e.g. resumed from a checkpoint of a finished run —
		// executes no further rounds, and so that an observer's topology
		// change (AddNode/RemoveNode), which resets convergence, keeps the
		// run going.
		if e.converged {
			break
		}
		if err := ctx.Err(); err != nil {
			return e.finalizePartial(err)
		}
		stats, _ := e.Step()
		if e.observer != nil {
			if oerr := e.observer(stats); oerr != nil {
				if errors.Is(oerr, ErrStop) {
					return e.Finalize()
				}
				return e.finalizePartial(oerr)
			}
		}
	}
	return e.Finalize()
}

// finalizePartial packages the current progress as a Result and attaches
// cause as the run's error.
func (e *Engine) finalizePartial(cause error) (*Result, error) {
	res, err := e.Finalize()
	if err != nil {
		return nil, err
	}
	return res, cause
}

// Finalize assigns final sensing ranges (line 7 of Algorithm 1) and packages
// the Result. It can be called at any point, converged or not. When the run
// has converged, the dominating regions from the last round are reused (no
// node moved, so they are exact for the final positions); otherwise they are
// recomputed, which in Localized mode costs additional messages beyond the
// per-round trace.
func (e *Engine) Finalize() (*Result, error) {
	n := e.net.Len()
	radii := make([]float64, n)
	polysPerNode := e.regions
	if e.converged && polysPerNode == nil && !e.cfg.KeepRegions && len(e.lastRhat) == n {
		// Converged without region retention: each node's last-round R̂ is
		// bitwise the max vertex distance Finalize would measure — same
		// vertices, same position (nothing moved since), same fold.
		copy(radii, e.lastRhat)
	} else {
		if !e.converged || polysPerNode == nil {
			before := e.net.MessageCount()
			polysPerNode = e.computeRegions()
			e.finalMsgs += e.net.MessageCount() - before
		}
		for i := 0; i < n; i++ {
			radii[i] = voronoi.MaxDistFrom(e.net.Position(i), polysPerNode[i])
		}
	}
	res := &Result{
		Positions: e.net.Positions(),
		Radii:     radii,
		Rounds:    e.round,
		Converged: e.converged,
		Trace:     append([]RoundStats(nil), e.trace...),
		Messages:  e.msgBase + e.net.MessageCount(),
	}
	if e.cfg.KeepRegions {
		res.Regions = polysPerNode
	}
	return res, nil
}

// DebugRegions computes and returns every node's dominating region at the
// current positions without advancing the round counter. In Localized mode
// this performs (and charges) real expanding-ring searches. Intended for
// inspection, rendering and cross-validation.
func (e *Engine) DebugRegions() [][]geom.Polygon {
	return e.computeRegions()
}

// RemoveNode deletes node i from the deployment (failure injection). The
// engine continues with the remaining nodes; convergence state is reset.
// The network is mutated in place (message accounting continues), so only
// the removal itself is paid — no full reconstruction.
func (e *Engine) RemoveNode(i int) error {
	n := e.net.Len()
	if i < 0 || i >= n {
		return fmt.Errorf("core: RemoveNode index %d out of range [0,%d)", i, n)
	}
	if n-1 < e.cfg.K {
		return fmt.Errorf("core: removing node %d would leave %d < K=%d nodes", i, n-1, e.cfg.K)
	}
	e.net.RemoveNode(i)
	e.converged = false
	// The cache indexes the old node numbering (removal renumbers every
	// node above i), so no per-entry salvage is possible: drop it wholesale.
	e.cache = nil
	return nil
}

// AddNode inserts a node at p (clamped into the region). Convergence state
// is reset. Like RemoveNode, the network is extended in place.
func (e *Engine) AddNode(p geom.Point) {
	e.net.AddNode(e.reg.ClampInside(p))
	e.converged = false
	// A node-count change resizes the cache and every neighborhood near p
	// changed; ensureBuffers discards the old cache on the size mismatch,
	// dropping it here just makes that explicit.
	e.cache = nil
}

// computeRegions returns each node's dominating region under the configured
// mode.
func (e *Engine) computeRegions() [][]geom.Polygon {
	switch e.cfg.Mode {
	case Localized:
		return e.localizedRegions()
	default:
		return e.centralizedRegions()
	}
}

// centralizedRegions computes every node's dominating region with global
// knowledge, fanning the per-node computations across Config.Workers.
func (e *Engine) centralizedRegions() [][]geom.Polygon {
	n := e.net.Len()
	out := make([][]geom.Polygon, n)
	e.net.Rebuild()
	workers := parallel.Workers(e.cfg.Workers)
	e.ensurePool(workers)
	batch := e.batchOn()
	parallel.ForWorker(n, workers, func(w, i int) {
		if batch {
			s := e.pool[w]
			refs, _, _ := centralizedRegionSoA(e.net, e.reg, i, e.cfg.K, 0, s)
			out[i] = voronoi.CompactRefs(&s.vor.Slab, refs)
			return
		}
		polys := CentralizedDominatingRegionScratch(e.net, e.reg, i, e.cfg.K, e.pool[w])
		out[i] = voronoi.CompactRegion(polys)
	})
	return out
}
