package core

import (
	"fmt"
	"math/rand"
	"testing"

	"laacad/internal/boundary"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/wsn"
)

// assertSameMessages is assertIdentical plus the Localized acceptance
// criterion: the cached run's message accounting — total and per round (the
// trace comparison inside assertIdentical covers per-round) — must be
// exactly equal to the eager run's, not merely close.
func assertSameMessages(t *testing.T, label string, res1, res2 *Result) {
	t.Helper()
	if res1.Messages != res2.Messages {
		t.Errorf("%s: message totals differ: %d vs %d", label, res1.Messages, res2.Messages)
	}
	if res1.Messages == 0 {
		t.Errorf("%s: localized run charged no messages at all", label)
	}
}

// The message-faithful cache contract: across seeds, sizes, coverage orders,
// placements, ring modes, update orders and worker counts, a cached
// Localized run has a byte-identical trajectory AND exactly equal message
// accounting versus the eager (DisableCache) engine. Reuses re-charge the
// recorded search cost, so skipping the ring searches is invisible to the
// protocol's books.
func TestLocalizedCacheMatchesEager(t *testing.T) {
	reg := region.UnitSquareKm()
	type cell struct {
		seed      int64
		n, k      int
		placement string
	}
	cells := []cell{
		{1, 50, 1, "uniform"},
		{2, 120, 2, "uniform"},
		{3, 60, 2, "corner"}, // boundary flags flip as the pile spreads
	}
	ringModes := []wsn.RingQueryMode{wsn.RingGeometric, wsn.RingHopLimited}
	orders := []UpdateOrder{Synchronous, Sequential}
	if testing.Short() {
		cells = cells[:1]
		ringModes = ringModes[:1]
	}
	for _, c := range cells {
		for _, ringMode := range ringModes {
			for _, order := range orders {
				c, ringMode, order := c, ringMode, order
				name := fmt.Sprintf("seed=%d/n=%d/k=%d/%s/ringmode=%d/%v",
					c.seed, c.n, c.k, c.placement, ringMode, order)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(c.seed))
					var start []geom.Point
					if c.placement == "corner" {
						start = region.PlaceCorner(reg, c.n, 0.15, rng)
					} else {
						start = region.PlaceUniform(reg, c.n, rng)
					}
					cfg := DefaultConfig(c.k)
					cfg.Mode = Localized
					cfg.Gamma = 0.25
					cfg.RingMode = ringMode
					cfg.Order = order
					cfg.Epsilon = 1e-3
					cfg.MaxRounds = 20
					cfg.Seed = c.seed
					cfg.DisableCache = true
					eagerTrace, eagerRes := runEngine(t, reg, start, cfg)

					cfg.DisableCache = false
					workerCounts := []int{0, 3}
					for _, w := range workerCounts {
						cfg.Workers = w
						cachedTrace, cachedRes := runEngine(t, reg, start, cfg)
						label := fmt.Sprintf("cache-on workers=%d", w)
						assertIdentical(t, label, eagerTrace, cachedTrace, eagerRes, cachedRes)
						assertSameMessages(t, label, eagerRes, cachedRes)
					}
				})
			}
		}
	}
}

// In the few-movers regime the cache must actually skip ring searches: most
// nodes hit, the per-round message count stays exactly what the eager
// protocol charges (every reuse re-charges its recorded cost, so converged
// nodes still "pay" their searches), and the converged tail still reports a
// full complement of messages.
func TestLocalizedCacheReusesAndRecharges(t *testing.T) {
	n := 2500
	start, pitch := wsn.UnitLattice(n, 16)
	reg := region.UnitSquareKm()
	mk := func(disable bool) *Engine {
		cfg := DefaultConfig(2)
		cfg.Mode = Localized
		cfg.Gamma = 3 * pitch
		cfg.Epsilon = pitch / 50
		cfg.Seed = 1
		cfg.DisableCache = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eager, cached := mk(true), mk(false)
	rounds := 4
	for r := 0; r < rounds; r++ {
		se, _ := eager.Step()
		sc, _ := cached.Step()
		if se != sc {
			t.Fatalf("round %d stats diverge:\neager  %+v\ncached %+v", r+1, se, sc)
		}
		if sc.Messages == 0 {
			t.Fatalf("round %d charged no messages; re-charging broken", r+1)
		}
	}
	if got := cached.CacheCounters().CacheHits; got == 0 {
		t.Error("no cache hits in the few-movers regime")
	} else if got < uint64(n) {
		t.Errorf("only %d hits over %d rounds of %d nodes; cache barely engaged", got, rounds, n)
	}
	if eager.Network().MessageCount() != cached.Network().MessageCount() {
		t.Errorf("cumulative messages diverge: eager %d, cached %d",
			eager.Network().MessageCount(), cached.Network().MessageCount())
	}
}

// Regression: a RingCap below γ clamps the very first ring, so the search's
// own read radius is smaller than the γ-ball the boundary flag is derived
// from; the invalidation radius must be floored at γ or a neighbor moving
// inside (RingCap, γ) could flip a node's boundary status without touching
// its cached entry — and the lazy PerNode path skips the flag comparison.
func TestLocalizedCacheTinyRingCapMatchesEager(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceCorner(reg, 50, 0.2, rand.New(rand.NewSource(19)))
	run := func(disable bool) ([]RoundStats, *Result) {
		cfg := DefaultConfig(2)
		cfg.Mode = Localized
		cfg.Gamma = 0.3
		cfg.RingCap = 0.12 // below γ: every search is cap-clamped
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 15
		cfg.Seed = 19
		cfg.DisableCache = disable
		return runEngine(t, reg, start, cfg)
	}
	eagerTrace, eagerRes := run(true)
	cachedTrace, cachedRes := run(false)
	assertIdentical(t, "tiny-ringcap", eagerTrace, cachedTrace, eagerRes, cachedRes)
	assertSameMessages(t, "tiny-ringcap", eagerRes, cachedRes)

	// The invariant itself, pinned directly (the trajectory comparison
	// above rarely manufactures the flag-flip-outside-tiny-ball race):
	// every cached entry's invalidation ball covers the γ-ball its
	// boundary flag was derived from. A near-steady lattice leaves most
	// entries valid after a round, so the check is not vacuous.
	lattice, pitch := wsn.UnitLattice(400, 4)
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Gamma = 3 * pitch
	cfg.RingCap = 1.2 * pitch // below γ: every search is cap-clamped
	cfg.Epsilon = pitch / 50
	cfg.Seed = 19
	eng, err := New(reg, lattice, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	eng.Step()
	checked := 0
	for i := range eng.cache {
		if c := &eng.cache[i]; c.valid {
			checked++
			if c.rho < cfg.Gamma {
				t.Fatalf("entry %d has invalidation radius %v < γ=%v; boundary flag reads outside its ball",
					i, c.rho, cfg.Gamma)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no valid entries survived; the invariant check is vacuous")
	}
}

// Message loss makes outcomes per-round random, so the cache must disable
// itself: reusing last round's outcome would skip this round's loss draws.
func TestLocalizedLossDisablesCache(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 40, rand.New(rand.NewSource(7)))
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Gamma = 0.25
	cfg.LossRate = 0.1
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 6
	cfg.Seed = 7
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		eng.Step()
	}
	if hits := eng.CacheCounters().CacheHits; hits != 0 {
		t.Errorf("lossy localized run served %d outcomes from cache; loss draws were skipped", hits)
	}
}

// A global (non-PerNode) detector forces eager flag evaluation each round;
// the cached engine must then compare flags and recompute any node whose
// boundary status changed, staying bit-identical to the eager run.
func TestLocalizedCacheWithGlobalDetector(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceCorner(reg, 50, 0.2, rand.New(rand.NewSource(11)))
	run := func(disable bool) ([]RoundStats, *Result) {
		cfg := DefaultConfig(2)
		cfg.Mode = Localized
		cfg.Gamma = 0.3
		cfg.Detector = boundary.Hull{}
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 15
		cfg.Seed = 11
		cfg.DisableCache = disable
		return runEngine(t, reg, start, cfg)
	}
	eagerTrace, eagerRes := run(true)
	cachedTrace, cachedRes := run(false)
	assertIdentical(t, "hull-detector", eagerTrace, cachedTrace, eagerRes, cachedRes)
	assertSameMessages(t, "hull-detector", eagerRes, cachedRes)
}

// Out-of-band position writes must stay correct in Localized mode too: the
// per-cell diff (or the wholesale flush it falls back to) drops every entry
// whose search could have read the rewritten position, and the message
// accounting still matches the eager run subjected to the same schedule.
func TestLocalizedCacheSurvivesExternalWrite(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 60, rand.New(rand.NewSource(13)))
	run := func(disable bool) ([]RoundStats, *Result) {
		cfg := DefaultConfig(2)
		cfg.Mode = Localized
		cfg.Gamma = 0.25
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 15
		cfg.Seed = 13
		cfg.DisableCache = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < cfg.MaxRounds; r++ {
			if r == 5 {
				eng.Network().SetPosition(3, geom.Pt(0.05, 0.95))
			}
			if _, done := eng.Step(); done {
				break
			}
		}
		res, err := eng.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Trace(), res
	}
	eagerTrace, eagerRes := run(true)
	cachedTrace, cachedRes := run(false)
	assertIdentical(t, "external-write", eagerTrace, cachedTrace, eagerRes, cachedRes)
	assertSameMessages(t, "external-write", eagerRes, cachedRes)
}
