package core

import (
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// RingProbe reports the outcome of one expanding-ring search (Algorithm 2)
// for a single node, without moving anything — the measurement behind the
// paper's Fig. 2 (how many hops a node needs to compute its k-order
// dominating region).
type RingProbe struct {
	// Hops is the final ring radius in units of γ (ρ = Hops·γ).
	Hops int
	// Neighbors is the number of nodes inside the final ring.
	Neighbors int
	// Messages is the link-level message cost charged for the search.
	Messages int64
	// Region is the resulting dominating region.
	Region []geom.Polygon
}

// ExpandingRing runs Algorithm 2 for node i over the network as it stands
// and returns the probe result. The search expands in increments of γ until
// the circle of radius ρ/2 around the node is fully non-dominated (sampled
// with arcSamples points, skipping samples outside reg), exactly as the
// Localized engine does for interior nodes. ringCap bounds ρ; pass 0 for the
// region diagonal.
func ExpandingRing(net *wsn.Network, reg *region.Region, i, k, arcSamples int, mode wsn.RingQueryMode, ringCap float64) RingProbe {
	if arcSamples < 8 {
		arcSamples = 64
	}
	if ringCap == 0 {
		ringCap = reg.BBox().Diagonal() + net.Gamma()
	}
	e := &Engine{
		cfg: Config{
			K:          k,
			Gamma:      net.Gamma(),
			ArcSamples: arcSamples,
			RingMode:   mode,
			RingCap:    ringCap,
		},
		reg: reg,
		net: net,
	}
	s := NewScratch()
	before := net.MessageCount()
	gamma := net.Gamma()
	rho := 0.0
	var nbrIDs []int
	for {
		rho += gamma
		if rho >= ringCap {
			nbrIDs = net.RingQuery(i, ringCap, mode)
			break
		}
		nbrIDs = net.RingQuery(i, rho, mode)
		if dominated, _ := e.circleDominated(i, nbrIDs, rho/2, false, s); dominated {
			break
		}
	}
	sites := make([]voronoi.Site, 0, len(nbrIDs))
	for _, j := range nbrIDs {
		sites = append(sites, voronoi.Site{ID: j, Pos: net.Position(j)})
	}
	polys := voronoi.DominatingRegion(voronoi.Site{ID: i, Pos: net.Position(i)}, sites, k, reg.Pieces())
	return RingProbe{
		Hops:      int(rho/gamma + 0.5),
		Neighbors: len(nbrIDs),
		Messages:  net.MessageCount() - before,
		Region:    polys,
	}
}
