package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/wsn"
)

// runEngine drives a fixed configuration to convergence (or MaxRounds) and
// returns the trace plus the finalized result for bitwise comparison.
func runEngine(t *testing.T, reg *region.Region, start []geom.Point, cfg Config) ([]RoundStats, *Result) {
	t.Helper()
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		if _, done := eng.Step(); done {
			break
		}
	}
	res, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return eng.Trace(), res
}

// The dirty-set contract: the incremental engine is semantically invisible.
// Across seeds, sizes, coverage orders, worker counts and both update
// orders, the cached engine's trace, final positions and radii are
// bit-identical to the eager (DisableCache) engine's. This is the
// equivalence half of the PR's acceptance criteria; the determinism matrix
// in parallel_test.go covers worker-count invariance.
func TestDirtySetMatchesEagerEngine(t *testing.T) {
	reg := region.UnitSquareKm()
	seeds := []int64{1, 2, 3}
	sizes := []int{40, 150}
	ks := []int{1, 2, 3}
	orders := []UpdateOrder{Synchronous, Sequential}
	if testing.Short() {
		seeds, sizes, ks = []int64{1}, []int{40}, []int{2}
	}
	for _, seed := range seeds {
		for _, n := range sizes {
			for _, k := range ks {
				for _, order := range orders {
					seed, n, k, order := seed, n, k, order
					t.Run(fmt.Sprintf("seed=%d/n=%d/k=%d/%v", seed, n, k, order), func(t *testing.T) {
						t.Parallel()
						rng := rand.New(rand.NewSource(seed))
						start := region.PlaceUniform(reg, n, rng)
						cfg := DefaultConfig(k)
						cfg.Epsilon = 1e-3
						cfg.MaxRounds = 60 // into the converged tail for most cells
						cfg.Seed = seed
						cfg.Order = order
						cfg.DisableCache = true
						eagerTrace, eagerRes := runEngine(t, reg, start, cfg)

						cfg.DisableCache = false
						workerCounts := []int{0}
						if order == Synchronous {
							workerCounts = append(workerCounts, 3, runtime.NumCPU())
						}
						for _, w := range workerCounts {
							cfg.Workers = w
							cachedTrace, cachedRes := runEngine(t, reg, start, cfg)
							assertIdentical(t, fmt.Sprintf("cache-on workers=%d", w),
								eagerTrace, cachedTrace, eagerRes, cachedRes)
						}
					})
				}
			}
		}
	}
}

// In the converged tail the cache must actually kick in: stepping a
// converged engine recomputes nothing, so the trailing rounds are nearly
// free. This pins the perf mechanism (not just the equivalence) so a
// regression that silently disables caching fails the suite.
func TestDirtySetReusesOutcomesWhenConverged(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 60, rand.New(rand.NewSource(5)))
	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 200
	cfg.Seed = 5
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	converged := false
	for r := 0; r < cfg.MaxRounds && !converged; r++ {
		_, converged = eng.Step()
	}
	if !converged {
		t.Skip("deployment did not converge within MaxRounds; tail unreachable")
	}
	valid := 0
	for i := range eng.cache {
		if eng.cache[i].valid {
			valid++
		}
	}
	if valid != len(eng.cache) {
		t.Fatalf("converged engine has %d/%d valid cache entries, want all", valid, len(eng.cache))
	}
	// Further steps must preserve the all-valid cache and the trajectory.
	before := eng.Positions()
	eng.Step()
	for i, p := range eng.Positions() {
		if p != before[i] {
			t.Fatalf("node %d moved after convergence", i)
		}
	}
}

// Topology changes (failure injection) rebuild the network; the cache must
// be discarded, and the resulting run must still match an eager engine
// subjected to the same mutation schedule.
func TestDirtySetSurvivesTopologyChange(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 50, rand.New(rand.NewSource(9)))
	run := func(disable bool) ([]RoundStats, *Result) {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 30
		cfg.Seed = 9
		cfg.DisableCache = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < cfg.MaxRounds; r++ {
			if r == 10 {
				if err := eng.RemoveNode(7); err != nil {
					t.Fatal(err)
				}
				eng.AddNode(geom.Pt(0.9, 0.9))
			}
			if _, done := eng.Step(); done {
				break
			}
		}
		res, err := eng.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Trace(), res
	}
	eagerTrace, eagerRes := run(true)
	cachedTrace, cachedRes := run(false)
	assertIdentical(t, "topology-change", eagerTrace, cachedTrace, eagerRes, cachedRes)
}

// Regression: a paired RemoveNode+AddNode restores the node count AND can
// collide on the fresh network's mutation version (both counters restart at
// zero), so neither the length check nor the version check alone may be
// trusted — the swap must drop the cache explicitly. Before the fix, a
// converged engine (version still zero: no move was ever applied) kept all
// cache entries across the swap and replayed outcomes for the old node
// numbering.
func TestDirtySetFlushedByPairedTopologyChange(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 30, rand.New(rand.NewSource(27)))
	mk := func(disable bool) *Engine {
		cfg := DefaultConfig(2)
		cfg.Epsilon = reg.BBox().Diagonal() * 2 // every node converged from round one
		cfg.MaxRounds = 10
		cfg.Seed = 27
		cfg.DisableCache = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	drive := func(eng *Engine) ([]RoundStats, *Result) {
		eng.Step() // converges immediately; net.Version() stays 0
		if err := eng.RemoveNode(4); err != nil {
			t.Fatal(err)
		}
		eng.AddNode(geom.Pt(0.02, 0.97)) // node count restored, version 0 again
		eng.Step()
		eng.Step()
		res, err := eng.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Trace(), res
	}
	eagerTrace, eagerRes := drive(mk(true))
	cachedTrace, cachedRes := drive(mk(false))
	assertIdentical(t, "paired-topology-change", eagerTrace, cachedTrace, eagerRes, cachedRes)
}

// Out-of-band position writes (direct Network mutation between Steps) must
// invalidate every affected entry: the engine detects them via the network's
// mutation version and localizes the damage with the per-cell version diff
// (falling back to a wholesale flush), so a stale outcome can never leak
// into the next round.
func TestDirtySetFlushesOnExternalPositionWrite(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 40, rand.New(rand.NewSource(13)))
	run := func(disable bool) ([]RoundStats, *Result) {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 25
		cfg.Seed = 13
		cfg.DisableCache = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < cfg.MaxRounds; r++ {
			if r == 8 {
				// Teleport a node behind the engine's back.
				eng.Network().SetPosition(3, geom.Pt(0.05, 0.95))
			}
			if _, done := eng.Step(); done {
				break
			}
		}
		res, err := eng.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return eng.Trace(), res
	}
	eagerTrace, eagerRes := run(true)
	cachedTrace, cachedRes := run(false)
	assertIdentical(t, "external-write", eagerTrace, cachedTrace, eagerRes, cachedRes)
}

// The scaling acceptance criterion of the incremental spatial layer: in the
// few-movers regime at large n, Engine.Step must neither rebuild the grid
// from scratch nor fall back to the dense pair-scan — moves are absorbed as
// incremental bucket updates and invalidation runs as inverse range queries
// whose visit counts track what moved, not what exists.
func TestFewMoversStepAvoidsRebuildAndPairScan(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 2500
	}
	start, pitch := wsn.UnitLattice(n, 16)
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = pitch / 50
	cfg.Seed = 1
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step() // cold round: computes and caches every node
	rebuilds := eng.Network().Rebuilds()
	before := eng.CacheCounters()
	movedTotal := 0
	for r := 0; r < 5; r++ {
		st, done := eng.Step()
		movedTotal += st.Moved
		if done {
			t.Fatalf("converged at round %d; the displaced lattice should stay in the few-movers regime", st.Round)
		}
	}
	after := eng.CacheCounters()
	if got := eng.Network().Rebuilds(); got != rebuilds {
		t.Errorf("steady-state steps performed %d full grid rebuilds, want 0", got-rebuilds)
	}
	if after.PairScans != before.PairScans {
		t.Errorf("steady-state steps fell back to the dense pair-scan %d times, want 0",
			after.PairScans-before.PairScans)
	}
	if after.InverseScans == before.InverseScans {
		t.Error("inverse invalidation never ran despite nodes moving")
	}
	// The inverse queries must visit far fewer entries than the pair-scan
	// would have (valid ≈ n per round, movers ≈ movedTotal): demand at least
	// a 4× margin over the dense cost.
	dense := uint64(movedTotal) * uint64(n)
	if visits := after.CandidateVisits - before.CandidateVisits; visits*4 > dense {
		t.Errorf("inverse invalidation visited %d candidates over %d movers (dense cost %d): not local",
			visits, movedTotal, dense)
	}
	if moves := eng.Network().IncrementalMoves(); moves == 0 {
		t.Error("no incremental index updates recorded; moves went through the bulk path")
	}
}

// A fully converged step must do no invalidation or index work at all.
func TestConvergedStepDoesNoSpatialWork(t *testing.T) {
	start, _ := wsn.UnitLattice(900, 0)
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = reg.BBox().Diagonal() // converged from round one
	cfg.Seed = 3
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := eng.Step(); !done {
		t.Fatal("expected immediate convergence")
	}
	rebuilds := eng.Network().Rebuilds()
	moves := eng.Network().IncrementalMoves()
	before := eng.CacheCounters()
	for r := 0; r < 3; r++ {
		eng.Step()
	}
	if eng.Network().Rebuilds() != rebuilds || eng.Network().IncrementalMoves() != moves {
		t.Error("converged steps touched the spatial index")
	}
	// Converged steps serve every node from the cache (hits accumulate by
	// design); everything that measures invalidation or index work must
	// stay flat.
	if eng.CacheCounters().invalidationCounters() != before.invalidationCounters() {
		t.Errorf("converged steps did invalidation work: %+v -> %+v", before, eng.CacheCounters())
	}
}

// The incremental index must be semantically invisible, end to end: a run
// whose grid is forced through a full from-scratch rebuild (and cache flush)
// before every round is bit-identical to the incrementally maintained run,
// across seeds, sizes, coverage orders and both update orders.
func TestIncrementalIndexMatchesForcedRebuildTrajectories(t *testing.T) {
	reg := region.UnitSquareKm()
	cells := []struct {
		seed int64
		n, k int
	}{{1, 60, 2}, {2, 150, 3}}
	orders := []UpdateOrder{Synchronous, Sequential}
	if testing.Short() {
		cells = cells[:1]
	}
	for _, cell := range cells {
		for _, order := range orders {
			cell, order := cell, order
			t.Run(fmt.Sprintf("seed=%d/n=%d/k=%d/%v", cell.seed, cell.n, cell.k, order), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(cell.seed))
				start := region.PlaceUniform(reg, cell.n, rng)
				cfg := DefaultConfig(cell.k)
				cfg.Epsilon = 1e-3
				cfg.MaxRounds = 40
				cfg.Seed = cell.seed
				cfg.Order = order
				run := func(forceRebuild bool) ([]RoundStats, *Result) {
					eng, err := New(reg, start, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for r := 0; r < cfg.MaxRounds; r++ {
						if forceRebuild {
							// A self-assigning bulk write dirties the whole
							// index (and flushes the cache via the version
							// bump): the next round rebuilds from scratch.
							eng.Network().SetPositions(eng.Positions())
						}
						if _, done := eng.Step(); done {
							break
						}
					}
					res, err := eng.Finalize()
					if err != nil {
						t.Fatal(err)
					}
					return eng.Trace(), res
				}
				rbTrace, rbRes := run(true)
				workerCounts := []int{0}
				if order == Synchronous {
					workerCounts = append(workerCounts, 3, runtime.NumCPU())
				}
				for _, w := range workerCounts {
					cfg.Workers = w
					incTrace, incRes := run(false)
					assertIdentical(t, fmt.Sprintf("incremental-vs-rebuild workers=%d", w),
						rbTrace, incTrace, rbRes, incRes)
				}
			})
		}
	}
}

// stepAllocCeiling is the committed allocs/op budget for a steady-state
// (fully converged, all-cache-valid) Engine.Step. The CI benchmark job
// fails when TestStepAllocsSteadyState trips, making alloc regressions on
// the hot path a build break. The budget covers the per-round
// [][]Polygon header slice, the trace append amortization, and test-harness
// noise — the geometry kernel itself contributes zero.
const stepAllocCeiling = 8

// Steady-state Step must stay within the committed allocation budget.
func TestStepAllocsSteadyState(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 80, rand.New(rand.NewSource(21)))
	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 300
	cfg.Seed = 21
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	converged := false
	for r := 0; r < cfg.MaxRounds && !converged; r++ {
		_, converged = eng.Step()
	}
	if !converged {
		t.Fatal("deployment did not converge; cannot measure steady state")
	}
	allocs := testing.AllocsPerRun(100, func() { eng.Step() })
	if allocs > stepAllocCeiling {
		t.Errorf("steady-state Step allocates %v/op, ceiling %d", allocs, stepAllocCeiling)
	}
}

// Active-round allocations must stay bounded too: with every node moving
// (epsilon ~ 0), the scratch kernel caps the per-node cost at the outcome
// compaction (2 allocs) plus small per-round bookkeeping.
func TestStepAllocsActiveRounds(t *testing.T) {
	reg := region.UnitSquareKm()
	n := 100
	start := region.PlaceUniform(reg, n, rand.New(rand.NewSource(22)))
	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-9 // keep every node moving
	cfg.MaxRounds = 1 << 20
	cfg.Seed = 22
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ { // warm buffers and arenas
		eng.Step()
	}
	allocs := testing.AllocsPerRun(20, func() { eng.Step() })
	perNode := allocs / float64(n)
	if perNode > 4 {
		t.Errorf("active Step allocates %.2f/node (total %v), want <= 4", perNode, allocs)
	}
}

// The dominating-region pipeline of a live engine (region + Chebyshev) runs
// allocation-free on a warmed scratch.
func TestCentralizedRegionScratchZeroAllocs(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 120, rand.New(rand.NewSource(23)))
	cfg := DefaultConfig(2)
	cfg.Seed = 23
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Network().Rebuild()
	s := NewScratch()
	for i := 0; i < 120; i++ { // warm across all nodes
		polys := CentralizedDominatingRegionScratch(eng.Network(), reg, i, cfg.K, s)
		ChebyshevOfRegion(polys, s)
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 120; i++ {
			polys := CentralizedDominatingRegionScratch(eng.Network(), reg, i, cfg.K, s)
			ChebyshevOfRegion(polys, s)
		}
	})
	if allocs > 0 {
		t.Errorf("warmed region+Chebyshev pipeline allocates %v per 120-node sweep, want 0", allocs)
	}
}
