package core

import (
	"math"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Scratch is the per-worker workspace of the deployment hot path: the
// geometry kernel's polygon arena plus the neighbor-ID, site and vertex
// buffers threaded through the dominating-region → Chebyshev-center
// pipeline. One Scratch serves one goroutine; the round engine keeps one per
// worker so a steady-state round performs near-zero heap allocations. The
// zero value is ready to use.
type Scratch struct {
	vor   voronoi.Scratch
	nbrs  []int
	nbrD2 []float64 // squared distances parallel to nbrs (batch gather)
	sites []voronoi.Site
	verts []geom.Point
	ring  []geom.Point // circle-sample / disk-clip ring (Localized mode)

	// searchRho is the expanding search's final (pre-tightening) radius from
	// the last centralized region computation: the widest ball the search
	// actually read positions from. The sharded engine uses it as the read
	// radius when deciding whether a locally computed outcome can be trusted
	// (the tightened return value under-reports what was gathered).
	searchRho float64
}

// NewScratch returns an empty workspace. Buffers grow on first use and are
// retained across calls.
func NewScratch() *Scratch { return &Scratch{} }

// ChebyshevOfRegion returns the Chebyshev center and circumradius of a
// dominating region (the smallest-enclosing-circle of its vertices), using
// s's vertex buffer so the computation does not allocate.
func ChebyshevOfRegion(polys []geom.Polygon, s *Scratch) (geom.Point, float64) {
	s.verts = voronoi.VerticesInto(s.verts[:0], polys)
	return geom.ChebyshevCenterInPlace(s.verts)
}

// CentralizedDominatingRegion computes node i's dominating region over the
// network's current positions from global knowledge, using an
// exactness-checked expanding radius: a region computed from all nodes
// within distance ρ of u_i is globally exact as soon as its circumradius-
// from-u_i satisfies R̂ ≤ ρ/2, because every generator that could beat u_i
// at a point within R̂ of u_i lies within 2·R̂ ≤ ρ of u_i. It is shared by
// the round Engine and the asynchronous event-driven simulator.
func CentralizedDominatingRegion(net *wsn.Network, reg *region.Region, i, k int) []geom.Polygon {
	polys, _, _ := centralizedRegionScratch(net, reg, i, k, NewScratch())
	return polys
}

// CentralizedDominatingRegionScratch is CentralizedDominatingRegion with a
// reusable workspace: a warmed-up Scratch computes the region without heap
// allocation. The returned polygons are valid only until the next
// region computation on s; copy them with voronoi.CompactRegion to keep
// them.
func CentralizedDominatingRegionScratch(net *wsn.Network, reg *region.Region, i, k int, s *Scratch) []geom.Polygon {
	polys, _, _ := centralizedRegionScratch(net, reg, i, k, s)
	return polys
}

// centralizedRegionScratch runs the expanding-radius search on s and
// additionally returns the final search radius ρ — the exactness radius the
// incremental engine uses for cache invalidation: the computation read only
// positions of nodes within ρ of u_i, so the cached result stays
// bit-reproducible until some position inside that ball changes — and the
// region's circumradius R̂ about u_i (computed as a by-product of the
// exactness check).
func centralizedRegionScratch(net *wsn.Network, reg *region.Region, i, k int, s *Scratch) ([]geom.Polygon, float64, float64) {
	n := net.SearchLen() // global deployment size under sharding (see batch.go)
	pieces := reg.Pieces()
	diag := reg.BBox().Diagonal()
	ui := net.Position(i)
	self := voronoi.Site{ID: i, Pos: ui}
	// Initial guess: enough radius to see ~4k neighbors in a uniform
	// deployment; grows geometrically until the exactness check passes.
	rho := diag / math.Sqrt(float64(n)) * math.Sqrt(float64(4*k+4))
	for {
		s.nbrs = net.NeighborsWithinBuf(i, rho, s.nbrs)
		s.sites = s.sites[:0]
		for _, j := range s.nbrs {
			s.sites = append(s.sites, voronoi.Site{ID: j, Pos: net.Position(j)})
		}
		polys := voronoi.DominatingRegionScratch(self, s.sites, k, pieces, &s.vor)
		rhat := voronoi.MaxDistFrom(ui, polys)
		if 2*rhat <= rho || len(s.nbrs) == n-1 || rho > 4*diag {
			s.searchRho = rho
			return polys, rho, rhat
		}
		rho *= 2
	}
}
