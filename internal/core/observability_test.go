package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"laacad/internal/region"
	"laacad/internal/wsn"
)

// statsIdentity asserts a snapshot's self-consistency invariant
// (Messages == Detached + sum(ByNode)) and returns the total.
func statsIdentity(t *testing.T, s wsn.Stats) int64 {
	t.Helper()
	sum := s.Detached
	for _, v := range s.ByNode {
		sum += v
	}
	if sum != s.Messages {
		t.Fatalf("torn snapshot: Detached+sum(ByNode)=%d, Messages=%d", sum, s.Messages)
	}
	return s.Messages
}

// The exactness matrix for mid-round observability: at EVERY serial commit
// of a Sequential Localized sweep — the finest-grained observation points
// the engine has — the externally visible message total must equal the
// eager (cache-off, serial) engine's total at the same commit, be
// self-consistent, and never decrease. This is the end-to-end contract of
// the deferred-charge ledger: speculation and caching are invisible not
// just at round boundaries but at every instant in between.
func TestMidRoundAccountingExactness(t *testing.T) {
	reg := region.UnitSquareKm()
	for _, seed := range []int64{1, 42} {
		start := region.PlaceUniform(reg, 60, rand.New(rand.NewSource(seed)))
		cfg := DefaultConfig(2)
		cfg.Mode = Localized
		cfg.Order = Sequential
		cfg.Gamma = 0.25
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 8
		cfg.Seed = seed

		// Eager reference: serial, cache off, charges published the moment
		// each search runs. Record the message prefix after every commit.
		eagerCfg := cfg
		eagerCfg.DisableCache = true
		eager, err := New(reg, start, eagerCfg)
		if err != nil {
			t.Fatal(err)
		}
		var want [][]int64
		var cur []int64
		eager.commitHook = func(int) {
			cur = append(cur, eager.Network().MessageCount())
		}
		for r := 0; r < cfg.MaxRounds; r++ {
			eager.Step()
			want = append(want, cur)
			cur = nil
		}

		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				wcfg := cfg
				wcfg.Workers = workers
				eng, err := New(reg, start, wcfg)
				if err != nil {
					t.Fatal(err)
				}
				round := 0
				prev := int64(-1)
				eng.commitHook = func(i int) {
					got := statsIdentity(t, eng.Network().Stats())
					if got < prev {
						t.Fatalf("round %d commit %d: total went backwards (%d after %d)",
							round+1, i, got, prev)
					}
					prev = got
					if got != want[round][i] {
						t.Fatalf("round %d commit %d: visible total %d, eager charged %d",
							round+1, i, got, want[round][i])
					}
				}
				for r := 0; r < cfg.MaxRounds; r++ {
					round = r
					eng.Step()
					if depth := eng.Network().EscrowDepth(); depth != 0 {
						t.Fatalf("round %d left %d messages in escrow", r+1, depth)
					}
				}
			})
		}
	}
}

// The Synchronous Localized fan-out charges from worker goroutines
// concurrently; a sampler hammering Stats during the run must only ever see
// self-consistent, monotone snapshots (run under -race in CI).
func TestMidRoundStatsUnderSynchronousFanout(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 120, rand.New(rand.NewSource(7)))
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Order = Synchronous
	cfg.Gamma = 0.25
	cfg.Epsilon = 1e-3
	cfg.Workers = 8
	cfg.Seed = 7
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := int64(-1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := eng.Network().Stats()
			sum := s.Detached
			for _, v := range s.ByNode {
				sum += v
			}
			if sum != s.Messages {
				select {
				case errs <- fmt.Sprintf("torn snapshot: %d vs %d", sum, s.Messages):
				default:
				}
				return
			}
			if s.Messages < prev {
				select {
				case errs <- fmt.Sprintf("non-monotone: %d after %d", s.Messages, prev):
				default:
				}
				return
			}
			prev = s.Messages
		}
	}()
	for r := 0; r < 6; r++ {
		eng.Step()
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if eng.Network().MessageCount() == 0 {
		t.Fatal("localized run charged no messages")
	}
}

// An out-of-band ResetStats between rounds must not corrupt the cached
// engine's accounting: the trace never reports a negative round total, and
// the post-reset rounds charge exactly what the eager engine's post-reset
// rounds charge (the eager protocol re-runs every search after a reset, so
// the cached engine must recompute and re-measure too).
func TestResetStatsMidRunStaysExact(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 50, rand.New(rand.NewSource(11)))
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Order = Sequential
	cfg.Gamma = 0.25
	cfg.Epsilon = 1e-3
	cfg.Seed = 11

	eagerCfg := cfg
	eagerCfg.DisableCache = true
	eager, err := New(reg, start, eagerCfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := func() (RoundStats, RoundStats) {
		se, _ := eager.Step()
		sc, _ := cached.Step()
		return se, sc
	}
	for r := 0; r < 3; r++ {
		step()
	}
	eager.Network().ResetStats()
	cached.Network().ResetStats()
	for r := 0; r < 4; r++ {
		se, sc := step()
		if sc.Messages < 0 {
			t.Fatalf("post-reset round %d reports negative messages: %d", r, sc.Messages)
		}
		if se.Messages != sc.Messages {
			t.Fatalf("post-reset round %d: cached charged %d, eager charged %d",
				r, sc.Messages, se.Messages)
		}
	}
	if got, want := cached.Network().MessageCount(), eager.Network().MessageCount(); got != want {
		t.Fatalf("post-reset totals diverge: cached %d, eager %d", got, want)
	}
	for i, p := range cached.Positions() {
		if p != eager.Positions()[i] {
			t.Fatalf("trajectories diverged after reset at node %d", i)
		}
	}
}

// Steady-state rounds must not pay an O(n) boundary scan: the incremental
// flag cache re-evaluates only nodes whose γ-ball a move disturbed. The
// cold round evaluates everyone once; settled few-mover rounds evaluate
// O(disturbed); fully converged rounds evaluate nobody.
func TestSteadyStateRoundsSkipBoundaryScan(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 2500
	}
	start, pitch := wsn.UnitLattice(n, 16)
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Order = Sequential
	cfg.Gamma = 3 * pitch
	cfg.Epsilon = pitch / 50
	cfg.Seed = 1
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	if got := eng.CacheCounters().FlagEvals; got != uint64(n) {
		t.Fatalf("cold round evaluated %d flags, want exactly %d", got, n)
	}
	// Settle into the few-movers regime.
	for r := 0; r < 30; r++ {
		if st, done := eng.Step(); done || st.Moved <= n/128 {
			break
		}
	}
	before := eng.CacheCounters().FlagEvals
	movedTotal := 0
	for r := 0; r < 5; r++ {
		st, done := eng.Step()
		movedTotal += st.Moved
		if done {
			break
		}
	}
	evals := eng.CacheCounters().FlagEvals - before
	dense := uint64(5) * uint64(n)
	if evals*4 > dense {
		t.Errorf("few-mover rounds evaluated %d flags over %d movers (a wholesale scan costs %d): not incremental",
			evals, movedTotal, dense)
	}

	// Fully converged: zero evaluations per round.
	ccfg := cfg
	ccfg.Epsilon = reg.BBox().Diagonal()
	conv, err := New(reg, start, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := conv.Step(); !done {
		t.Fatal("expected immediate convergence")
	}
	base := conv.CacheCounters().FlagEvals
	for r := 0; r < 3; r++ {
		conv.Step()
	}
	if got := conv.CacheCounters().FlagEvals; got != base {
		t.Errorf("converged rounds evaluated %d boundary flags, want 0", got-base)
	}
}

// The incremental flag cache must be semantically invisible: a PerNode
// detector served through the cache and the same detector evaluated
// wholesale every round (cache disabled) walk identical trajectories with
// identical accounting.
func TestFlagCacheMatchesWholesaleDetection(t *testing.T) {
	reg := region.UnitSquareKm()
	for _, order := range []UpdateOrder{Sequential, Synchronous} {
		start := region.PlaceUniform(reg, 70, rand.New(rand.NewSource(23)))
		cfg := DefaultConfig(2)
		cfg.Mode = Localized
		cfg.Order = order
		cfg.Gamma = 0.25
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 10
		cfg.Seed = 23

		eagerCfg := cfg
		eagerCfg.DisableCache = true
		eager, err := New(reg, start, eagerCfg)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < cfg.MaxRounds; r++ {
			se, de := eager.Step()
			sc, dc := cached.Step()
			if se != sc || de != dc {
				t.Fatalf("order %v round %d: stats diverge\neager:  %+v\ncached: %+v", order, r+1, se, sc)
			}
		}
		for i, p := range cached.Positions() {
			if p != eager.Positions()[i] {
				t.Fatalf("order %v: trajectories diverged at node %d", order, i)
			}
		}
	}
}
