package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"laacad/internal/boundary"
	"laacad/internal/coverage"
	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
)

func uniformStart(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestConfigValidation(t *testing.T) {
	reg := region.UnitSquareKm()
	pts := uniformStart(5, 1)
	bad := []Config{
		{K: 0, Alpha: 0.5, Epsilon: 1e-3, MaxRounds: 10},
		{K: 6, Alpha: 0.5, Epsilon: 1e-3, MaxRounds: 10},                  // K > n
		{K: 1, Alpha: 0, Epsilon: 1e-3, MaxRounds: 10},                    // bad alpha
		{K: 1, Alpha: 1.5, Epsilon: 1e-3, MaxRounds: 10},                  // bad alpha
		{K: 1, Alpha: 0.5, Epsilon: 0, MaxRounds: 10},                     // bad epsilon
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, MaxRounds: 0},                   // bad rounds
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, MaxRounds: 10, Mode: Localized}, // no gamma
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, MaxRounds: 10, ArcSamples: 4},   // too few samples
		{K: 1, Alpha: 0.5, Epsilon: 1e-3, MaxRounds: 10, Mode: Mode(9)},   // unknown mode
	}
	for i, cfg := range bad {
		if _, err := New(reg, pts, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := New(nil, pts, DefaultConfig(1)); err == nil {
		t.Error("nil region should be rejected")
	}
	if _, err := New(reg, pts, DefaultConfig(2)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Centralized.String() != "centralized" || Localized.String() != "localized" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should still print")
	}
}

func TestCentralizedConvergesAndKCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	for _, k := range []int{1, 2, 3} {
		cfg := DefaultConfig(k)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 300
		eng, err := New(reg, uniformStart(30, 42), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("k=%d: did not converge in %d rounds", k, res.Rounds)
		}
		rep := coverage.Verify(res.Positions, res.Radii, reg, 60)
		if !rep.KCovered(k) {
			t.Errorf("k=%d: not k-covered: %v (worst %v)", k, rep, rep.WorstPoint)
		}
		if res.MaxRadius() <= 0 || res.MinRadius() <= 0 {
			t.Errorf("k=%d: degenerate radii [%v, %v]", k, res.MinRadius(), res.MaxRadius())
		}
	}
}

// Prop. 4 byproduct: for α = 1 the max circumradius bound R̂ is
// non-increasing round over round.
func TestRhatMonotoneForAlphaOne(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Alpha = 1
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 200
	eng, err := New(reg, uniformStart(25, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		prev, cur := res.Trace[i-1].MaxRhat, res.Trace[i].MaxRhat
		if cur > prev*(1+1e-6)+1e-9 {
			t.Errorf("round %d: R̂ grew %v -> %v", res.Trace[i].Round, prev, cur)
		}
	}
}

// The corner-pile start of Fig. 5 must spread nodes across the whole region.
func TestCornerDeploymentSpreads(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(3))
	start := region.PlaceCorner(reg, 40, 0.1, rng)
	cfg := DefaultConfig(1)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 300
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bb := geom.BBoxOf(res.Positions)
	if bb.Width() < 0.7 || bb.Height() < 0.7 {
		t.Errorf("nodes did not spread: bbox %v x %v", bb.Width(), bb.Height())
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 60)
	if !rep.KCovered(1) {
		t.Errorf("corner start not 1-covered: %v", rep)
	}
}

// At convergence every node sits within ε of the Chebyshev center of its
// dominating region (the fixed-point condition of Algorithm 1).
func TestFixedPointCondition(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 300
	cfg.KeepRegions = true
	eng, err := New(reg, uniformStart(20, 11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i, polys := range res.Regions {
		if len(polys) == 0 {
			continue
		}
		c, _ := geom.ChebyshevCenter(voronoi.Vertices(polys))
		c = reg.ClampInside(c)
		if d := res.Positions[i].Dist(c); d > cfg.Epsilon*1.5 {
			t.Errorf("node %d is %v from its Chebyshev center (eps=%v)", i, d, cfg.Epsilon)
		}
	}
}

// Sec. IV-C: for k ≥ 2 at convergence min and max sensing ranges are close
// (min-max fairness / load balancing).
func TestLoadBalanceForK3(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(3)
	cfg.Epsilon = 5e-4
	cfg.MaxRounds = 400
	eng, err := New(reg, uniformStart(45, 13), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.MinRadius() / res.MaxRadius()
	if ratio < 0.55 {
		t.Errorf("min/max radius ratio = %v, want close to 1 for k=3", ratio)
	}
}

// Localized (Algorithm 2) and centralized dominating regions must agree for
// interior nodes — Lemma 1's exactness guarantee.
func TestLocalizedMatchesCentralizedForInteriorNodes(t *testing.T) {
	reg := region.UnitSquareKm()
	start := uniformStart(40, 17)
	mk := func(mode Mode) *Engine {
		cfg := DefaultConfig(2)
		cfg.Mode = mode
		cfg.Gamma = 0.25
		cfg.ArcSamples = 128
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	cEng, lEng := mk(Centralized), mk(Localized)
	cRegions := cEng.computeRegions()
	lRegions := lEng.computeRegions()
	isBoundary := (boundary.Hull{Tol: 0.18}).Boundary(cEng.Network())
	checked := 0
	for i := range cRegions {
		if isBoundary[i] {
			continue
		}
		checked++
		ca := voronoi.RegionArea(cRegions[i])
		la := voronoi.RegionArea(lRegions[i])
		if math.Abs(ca-la) > 1e-6*(1+ca) {
			t.Errorf("node %d: centralized area %v != localized area %v", i, ca, la)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d interior nodes checked; test too weak", checked)
	}
	if lEng.Network().Stats().Messages == 0 {
		t.Error("localized mode should account messages")
	}
}

func TestLocalizedRunKCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Gamma = 0.3
	cfg.Epsilon = 2e-3
	cfg.MaxRounds = 150
	eng, err := New(reg, uniformStart(30, 19), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 50)
	if !rep.KCovered(2) {
		t.Errorf("localized run not 2-covered: %v (worst %v)", rep, rep.WorstPoint)
	}
	if res.Messages == 0 {
		t.Error("expected message accounting in localized mode")
	}
	perRound := int64(0)
	for _, tr := range res.Trace {
		perRound += tr.Messages
	}
	if perRound != res.Messages {
		t.Errorf("per-round messages %d != total %d", perRound, res.Messages)
	}
}

func TestObstaclesRespected(t *testing.T) {
	reg := region.SquareWithTwoObstacles()
	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 300
	rng := rand.New(rand.NewSource(23))
	start := region.PlaceUniform(reg, 35, rng)
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Positions {
		if !reg.Contains(p) {
			t.Errorf("node %d at %v is outside the region (in an obstacle?)", i, p)
		}
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 60)
	if !rep.KCovered(2) {
		t.Errorf("obstacle region not 2-covered: %v (worst %v)", rep, rep.WorstPoint)
	}
}

func TestRemoveNodeFailureInjection(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 300
	eng, err := New(reg, uniformStart(25, 29), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Kill three nodes, then let the deployment self-heal.
	for i := 0; i < 3; i++ {
		if err := eng.RemoveNode(0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 22 {
		t.Fatalf("node count = %d, want 22", len(res.Positions))
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 50)
	if !rep.KCovered(2) {
		t.Errorf("post-failure deployment not 2-covered: %v", rep)
	}
}

func TestRemoveNodeErrors(t *testing.T) {
	reg := region.UnitSquareKm()
	eng, err := New(reg, uniformStart(3, 31), DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveNode(5); err == nil {
		t.Error("out-of-range removal should error")
	}
	if err := eng.RemoveNode(0); err != nil {
		t.Errorf("valid removal errored: %v", err)
	}
	if err := eng.RemoveNode(0); err == nil {
		t.Error("removal below K nodes should error")
	}
}

func TestAddNode(t *testing.T) {
	reg := region.UnitSquareKm()
	eng, err := New(reg, uniformStart(5, 33), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	eng.AddNode(geom.Pt(0.5, 0.5))
	if eng.Network().Len() != 6 {
		t.Errorf("node count = %d, want 6", eng.Network().Len())
	}
	// A node added outside the region is clamped inside.
	eng.AddNode(geom.Pt(5, 5))
	p := eng.Network().Position(6)
	if !reg.Contains(p) {
		t.Errorf("added node at %v outside region", p)
	}
}

func TestDeterminism(t *testing.T) {
	reg := region.UnitSquareKm()
	run := func() *Result {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.MaxRounds = 60
		cfg.Seed = 99
		eng, err := New(reg, uniformStart(20, 37), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.Positions {
		if !a.Positions[i].Eq(b.Positions[i]) {
			t.Fatalf("position %d differs: %v vs %v", i, a.Positions[i], b.Positions[i])
		}
	}
}

// Initial positions outside the region must be clamped in, and the engine
// must still converge.
func TestInitialClamping(t *testing.T) {
	reg := region.UnitSquareKm()
	pts := []geom.Point{geom.Pt(-1, -1), geom.Pt(2, 2), geom.Pt(0.5, 0.5), geom.Pt(0.1, 0.9)}
	cfg := DefaultConfig(1)
	cfg.Epsilon = 1e-3
	eng, err := New(reg, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < eng.Network().Len(); i++ {
		if !reg.Contains(eng.Network().Position(i)) {
			t.Errorf("initial node %d not clamped inside", i)
		}
	}
}

// The engine's trace bookkeeping is consistent: round numbers increase and
// stats are recorded per step.
func TestStepBookkeeping(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(1)
	eng, err := New(reg, uniformStart(10, 41), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := eng.Step()
	s2, _ := eng.Step()
	if s1.Round != 1 || s2.Round != 2 {
		t.Errorf("round numbers: %d, %d", s1.Round, s2.Round)
	}
	if eng.Round() != 2 || len(eng.Trace()) != 2 {
		t.Errorf("Round()=%d len(Trace)=%d", eng.Round(), len(eng.Trace()))
	}
	if s1.MaxCircumradius < s1.MinCircumradius {
		t.Error("max < min circumradius")
	}
	if eng.Config().K != 1 {
		t.Error("Config accessor broken")
	}
}
