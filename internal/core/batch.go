package core

import (
	"math"
	"math/rand"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/voronoi"
	"laacad/internal/wsn"
)

// Batch-kernel dispatch: unless Config.DisableBatch is set, the per-node
// dominating-region pipeline runs on the structure-of-arrays kernel
// (voronoi.DominatingRegionSoA over slab-resident rel lists and polygon
// vertices) instead of the scalar clip pipeline. The two are bit-identical
// by contract — the SoA walk routes every arithmetic step through the same
// geom functions in the same order — so the dispatch is semantically
// invisible; what changes is the hot path's shape:
//
//   - The expanding-radius exactness search keeps its relevant-neighbor
//     slabs across ρ-doublings. Each doubling appends only the newly gathered
//     suffix (everything nearer is already present, in canonical (d², ID)
//     order) and sorts just that tail, where the scalar path rebuilds and
//     re-sorts the whole list per iteration.
//
//   - The search warm-starts at the node's last exactness radius (rhoHint)
//     instead of the density-based fallback guess, skipping the early
//     doubling iterations entirely in steady state. The final region is
//     bit-identical for any starting radius: the exactness predicate
//     2·R̂ ≤ ρ is what terminates the search, and generators beyond 2·R̂
//     leave both the clipping walk and its recursion bitwise untouched
//     (asserted by TestHintStartMatchesFallbackStart). The scalar oracle
//     deliberately keeps the fallback start so the two paths cross-check
//     the warm start, not just the kernel.

// batchOn reports whether the SoA batch kernel handles region computation.
func (e *Engine) batchOn() bool { return !e.cfg.DisableBatch }

// centralizedRegionSoA is centralizedRegionScratch on the batch kernel with
// an incremental rel list across ρ-doublings. startRho, when positive, warm-
// starts the expanding search (it is clamped up to the fallback guess, never
// down). The returned refs point into s.vor's slab and are valid until the
// next batch region computation on s.
func centralizedRegionSoA(net *wsn.Network, reg *region.Region, i, k int, startRho float64, s *Scratch) ([]geom.PolyRef, float64, float64) {
	// SearchLen, not Len: a sharded local network reports the global
	// deployment size here so the fallback radius — and with it the whole
	// probe sequence and its floating-point evaluation order — matches the
	// shared-memory engine bit for bit.
	n := net.SearchLen()
	pieces := reg.Pieces()
	diag := reg.BBox().Diagonal()
	ui := net.Position(i)
	self := voronoi.Site{ID: i, Pos: ui}
	// Initial guess: enough radius to see ~4k neighbors in a uniform
	// deployment; grows geometrically until the exactness check passes.
	fallback := diag / math.Sqrt(float64(n)) * math.Sqrt(float64(4*k+4))
	rho := fallback
	if startRho > rho {
		rho = startRho
	}
	s.vor.ResetRel()
	prevRho2 := 0.0
	for {
		// Fused gather: distances come back alongside the IDs (the range
		// filter computed them anyway) and the per-gather ID sort is skipped —
		// SortRelTail establishes the canonical (d², ID) order regardless of
		// gather order.
		s.nbrs, s.nbrD2 = net.NeighborsWithinDistBuf(i, rho, s.nbrs, s.nbrD2)
		relStart := s.vor.RelLen()
		for idx, j := range s.nbrs {
			d2 := s.nbrD2[idx]
			if d2 < prevRho2 {
				continue // already in the rel slabs from the previous radius
			}
			s.vor.AppendRel(self, voronoi.Site{ID: j, Pos: net.Position(j)}, d2)
		}
		s.vor.SortRelTail(relStart)
		refs := voronoi.DominatingRegionSoA(self, k, pieces, &s.vor)
		rhat := voronoi.MaxDistFromRefs(ui, &s.vor.Slab, refs)
		if 2*rhat <= rho || len(s.nbrs) == n-1 || rho > 4*diag {
			s.searchRho = rho // pre-tightening: the radius actually read
			// Tighten the returned radius toward the exactness threshold.
			// The doubling search overshoots — its final ρ lands anywhere in
			// [2R̂, 4R̂) — and since the return value seeds both the node's
			// cache-invalidation ball and the next search's warm start, the
			// overshoot compounds: a hint of 4R̂ gathers and sorts up to 4×
			// the neighbors the region needs. Any value ≥ 2R̂ is conservative
			// for invalidation (generators beyond 2R̂ cannot change the
			// region), and the warm start is exactness-checked anyway; 2.1R̂
			// leaves a 5% slack band over the threshold (numerical margin,
			// plus headroom for small region growth) while keeping both the
			// invalidation ball and the next gather close to minimal. Never
			// raised above the search's ρ, so the degenerate exits (whole
			// network visited, runaway radius) keep their current value.
			if t := math.Max(2.1*rhat, fallback); t < rho {
				rho = t
			}
			return refs, rho, rhat
		}
		prevRho2 = rho * rho
		rho *= 2
	}
}

// chebyshevOfRefs is ChebyshevOfRegion for slab-resident regions.
func chebyshevOfRefs(s *Scratch, refs []geom.PolyRef) (geom.Point, float64) {
	s.verts = voronoi.VerticesOfRefsInto(s.verts[:0], &s.vor.Slab, refs)
	return geom.ChebyshevCenterInPlace(s.verts)
}

// stepNodeCentralizedBatch is stepNodeCentralized on the batch kernel,
// warm-starting the expanding search at the node's last exactness radius.
func (e *Engine) stepNodeCentralizedBatch(i int, s *Scratch) (nodeOutcome, float64) {
	ui := e.net.Position(i)
	var hint float64
	if i < len(e.rhoHint) {
		hint = e.rhoHint[i]
	}
	refs, rho, rhat := centralizedRegionSoA(e.net, e.reg, i, e.cfg.K, hint, s)
	e.batchNodes.Add(1)
	if len(refs) == 0 {
		// Pathological (e.g. node crowded out numerically): stand still.
		return nodeOutcome{next: ui, empty: true}, rho
	}
	ci, ri := chebyshevOfRefs(s, refs)
	out := nodeOutcome{
		next: ui,
		ri:   ri,
		rhat: rhat,
	}
	if e.cfg.KeepRegions {
		out.polys = voronoi.CompactRefs(&s.vor.Slab, refs)
	}
	e.finishMove(ui, ci, &out)
	return out, rho
}

// localizedRegionRefs is the batch-kernel assembly of localizedRegionOf: the
// expanding-ring search (and its message accounting) is shared verbatim; only
// the region construction runs on the slabs.
func (e *Engine) localizedRegionRefs(i int, isBoundary bool, rng *rand.Rand, s *Scratch) ([]geom.PolyRef, float64) {
	ui := e.net.Position(i)
	nbrIDs, rho, clipToRing, invRad := e.localizedSearch(i, isBoundary, rng, s)
	self := voronoi.Site{ID: i, Pos: ui}
	s.vor.ResetRel()
	for _, j := range nbrIDs {
		pj := e.net.Position(j)
		s.vor.AppendRel(self, voronoi.Site{ID: j, Pos: pj}, pj.Dist2(ui))
	}
	s.vor.SortRelTail(0)
	refs := voronoi.DominatingRegionSoA(self, e.cfg.K, e.reg.Pieces(), &s.vor)
	if clipToRing {
		refs = clipToDiskRefs(refs, geom.Circle{Center: ui, R: rho / 2}, s)
	}
	return refs, invRad
}

// clipToDiskRefs is clipToDisk on the slabs.
func clipToDiskRefs(refs []geom.PolyRef, disk geom.Circle, s *Scratch) []geom.PolyRef {
	if disk.R <= 0 {
		return nil
	}
	s.ring = geom.AppendCirclePoints(s.ring[:0], disk, 48, math.Pi/48)
	return s.vor.ClipToConvexSoA(refs, geom.Polygon(s.ring))
}

// stepNodeLocalizedBatch is stepNodeLocalized on the batch kernel.
func (e *Engine) stepNodeLocalizedBatch(i int, isBoundary bool, rng *rand.Rand, s *Scratch) (nodeOutcome, float64) {
	ui := e.net.Position(i)
	refs, inv := e.localizedRegionRefs(i, isBoundary, rng, s)
	e.batchNodes.Add(1)
	if len(refs) == 0 {
		return nodeOutcome{next: ui, empty: true}, inv
	}
	ci, ri := chebyshevOfRefs(s, refs)
	out := nodeOutcome{
		next: ui,
		ri:   ri,
		rhat: voronoi.MaxDistFromRefs(ui, &s.vor.Slab, refs),
	}
	if e.cfg.KeepRegions {
		out.polys = voronoi.CompactRefs(&s.vor.Slab, refs)
	}
	e.finishMove(ui, ci, &out)
	return out, inv
}
