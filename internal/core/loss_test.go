package core

import (
	"context"
	"testing"

	"laacad/internal/coverage"
	"laacad/internal/region"
)

func TestConfigRejectsBadLossRate(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(1)
	cfg.Mode = Localized
	cfg.Gamma = 0.3
	cfg.LossRate = 1.0
	if _, err := New(reg, uniformStart(5, 1), cfg); err == nil {
		t.Error("LossRate = 1 should be rejected")
	}
	cfg.LossRate = -0.1
	if _, err := New(reg, uniformStart(5, 1), cfg); err == nil {
		t.Error("negative LossRate should be rejected")
	}
}

// Message loss enlarges (never shrinks) the regions a node computes, so the
// deployment still converges and still k-covers — it just pays more
// messages and may balance slightly worse.
func TestLocalizedWithMessageLossStillCovers(t *testing.T) {
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Mode = Localized
	cfg.Gamma = 0.3
	cfg.Epsilon = 3e-3
	cfg.MaxRounds = 200
	cfg.LossRate = 0.2
	cfg.LossRetries = 3
	cfg.Seed = 77
	eng, err := New(reg, uniformStart(30, 61), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := coverage.Verify(res.Positions, res.Radii, reg, 50)
	if !rep.KCovered(2) {
		t.Errorf("lossy deployment not 2-covered: %v (worst %v)", rep, rep.WorstPoint)
	}
	if res.Messages == 0 {
		t.Error("no messages accounted")
	}
}

// At equal seeds, a lossy run must send at least as many messages per round
// as a clean one (retries cost extra).
func TestLossCostsMessages(t *testing.T) {
	reg := region.UnitSquareKm()
	run := func(loss float64) int64 {
		cfg := DefaultConfig(1)
		cfg.Mode = Localized
		cfg.Gamma = 0.35
		cfg.LossRate = loss
		cfg.LossRetries = 4
		cfg.Seed = 5
		eng, err := New(reg, uniformStart(20, 63), cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.Step()
		return eng.Network().Stats().Messages
	}
	clean := run(0)
	lossy := run(0.3)
	if lossy <= clean {
		t.Errorf("lossy round should cost more: %d vs %d", lossy, clean)
	}
}
