package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/wsn"
)

// The colored-sweep contract: a Sequential round executed with speculation
// waves is bit-identical — same per-round trace, same fixed point, same
// radii — to the one-worker Gauss–Seidel sweep, for every worker count.
// This is the equivalence half of the tentpole's acceptance criteria; the
// wave-independence property test below pins the scheduling invariant.
func TestColoredSequentialMatchesSerial(t *testing.T) {
	reg := region.UnitSquareKm()
	seeds := []int64{1, 2, 3}
	sizes := []int{40, 150}
	ks := []int{1, 2, 3}
	if testing.Short() {
		seeds, sizes, ks = []int64{1}, []int{40}, []int{2}
	}
	workerCounts := []int{2, 4, 8}
	for _, seed := range seeds {
		for _, n := range sizes {
			for _, k := range ks {
				seed, n, k := seed, n, k
				t.Run(fmt.Sprintf("seed=%d/n=%d/k=%d", seed, n, k), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(seed))
					start := region.PlaceUniform(reg, n, rng)
					cfg := DefaultConfig(k)
					cfg.Order = Sequential
					cfg.Epsilon = 1e-3
					cfg.MaxRounds = 40 // active phase and converged tail
					cfg.Seed = seed
					trace1, res1 := runWorkers(t, reg, start, cfg, 1)
					for _, w := range workerCounts {
						traceW, resW := runWorkers(t, reg, start, cfg, w)
						assertIdentical(t, fmt.Sprintf("workers=%d", w), trace1, traceW, res1, resW)
					}
				})
			}
		}
	}
}

// The same contract at production scale: a 1k uniform deployment and a 10k
// few-movers lattice, swept with every worker count of the acceptance
// matrix. Gated behind -short because the serial reference pass at 10k is
// the expensive part.
func TestColoredSequentialMatchesSerialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large colored-sweep matrix skipped in -short")
	}
	reg := region.UnitSquareKm()
	cases := []struct {
		name   string
		start  []geom.Point
		eps    float64
		rounds int
	}{}
	start1k := region.PlaceUniform(reg, 1000, rand.New(rand.NewSource(17)))
	cases = append(cases, struct {
		name   string
		start  []geom.Point
		eps    float64
		rounds int
	}{"n=1000/uniform", start1k, 1e-3, 8})
	start10k, pitch := wsn.UnitLattice(10000, 64)
	cases = append(cases, struct {
		name   string
		start  []geom.Point
		eps    float64
		rounds int
	}{"n=10000/lattice", start10k, pitch / 50, 5})
	// Every node displaced: the dense-mover phase, where the dirty set is
	// the whole network and the interference DAG is at its deepest — the
	// hardest cell for the level scheduler's trigger bookkeeping.
	startDense, dpitch := wsn.UnitLattice(2500, 2500)
	cases = append(cases, struct {
		name   string
		start  []geom.Point
		eps    float64
		rounds int
	}{"n=2500/dense-movers", startDense, dpitch / 50, 6})
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(2)
			cfg.Order = Sequential
			cfg.Epsilon = tc.eps
			cfg.MaxRounds = tc.rounds
			cfg.Seed = 17
			trace1, res1 := runWorkers(t, reg, tc.start, cfg, 1)
			for _, w := range []int{2, 4, 8} {
				traceW, resW := runWorkers(t, reg, tc.start, cfg, w)
				assertIdentical(t, fmt.Sprintf("workers=%d", w), trace1, traceW, res1, resW)
			}
		})
	}
}

// The scheduling invariant behind the level-scheduled sweep: no two members
// of one wave interfere under the predicted radii — otherwise one member's
// commit could invalidate another member mid-wave. The wave is the ready
// prefix of the trigger-sorted queue, so the invariant decomposes into a
// plan-time property (if mover a disturbs b, then b's trigger sits past a —
// checked by schedHook while the disturber marks are live) and a launch-time
// structural property (every popped node is at or past the scan position —
// checked by waveHook): together they imply that a disturber of any popped
// node has already committed or is not yet popped, because both a and b in
// one wave at scan i means trigger(b) ≤ i < a+1 ≤ trigger(b), a
// contradiction.
func TestWaveClassPairwiseIndependent(t *testing.T) {
	reg := region.UnitSquareKm()
	start, pitch := wsn.UnitLattice(900, 12)
	cfg := DefaultConfig(2)
	cfg.Order = Sequential
	cfg.Epsilon = pitch / 50 // few-movers regime: waves engage every round
	cfg.MaxRounds = 8
	cfg.Seed = 31
	cfg.Workers = 4
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plans, launches := 0, 0
	eng.schedHook = func(keys []int64) {
		plans++
		fb := eng.hintFallback()
		ids := make([]int, 0, len(keys))
		trig := make(map[int]int, len(keys))
		for _, key := range keys {
			id := int(key & 0xffffffff)
			ids = append(ids, id)
			trig[id] = int(key >> 32)
		}
		sort.Ints(ids)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				a, b := ids[x], ids[y]
				if eng.interferes(a, b, eng.hintOf(b, fb), fb) && trig[b] <= a {
					t.Errorf("plan %d: %d disturbs %d but trigger %d does not wait for it",
						plans, a, b, trig[b])
				}
			}
		}
	}
	eng.waveHook = func(from int, sel []int) {
		launches++
		seen := make(map[int]bool, len(sel))
		for _, j := range sel {
			if j < from {
				t.Errorf("launch %d at scan %d includes already-committed node %d", launches, from, j)
			}
			if seen[j] {
				t.Errorf("launch %d: node %d popped twice", launches, j)
			}
			seen[j] = true
		}
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		if _, done := eng.Step(); done {
			break
		}
	}
	if plans == 0 || launches == 0 {
		t.Fatalf("level schedule never engaged: %d plans, %d launches", plans, launches)
	}
}

// Mover-heavy rounds must no longer fall back to serial: with a quarter of
// a lattice displaced every round's dirty set is large and mover-dense, the
// regime where the old fixed per-round wave budget (8 waves, dud latch)
// stopped speculating almost immediately. The level schedule keeps waves
// flowing — layers are laid out every planned round and the waves fill a
// meaningful share of the recomputed set.
func TestSeqLevelsEngageMoverHeavy(t *testing.T) {
	n := 2500
	start, pitch := wsn.UnitLattice(n, n/4)
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Order = Sequential
	cfg.Epsilon = pitch / 50
	cfg.Seed = 7
	cfg.Workers = 4
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step() // cold round: the whole network computes, nothing is marked yet
	base := eng.CacheCounters()
	movedTotal := 0
	for r := 0; r < 6; r++ {
		st, done := eng.Step()
		movedTotal += st.Moved
		if done {
			break
		}
	}
	c := eng.CacheCounters()
	if movedTotal < n/8 {
		t.Fatalf("scenario not mover-heavy: %d moves over %d nodes", movedTotal, n)
	}
	if c.Levels == base.Levels {
		t.Fatal("no level schedule was laid out in mover-heavy rounds")
	}
	if c.LevelWidthMax < 2 {
		t.Fatalf("waves never got wider than %d: mover-heavy rounds ran serially", c.LevelWidthMax)
	}
	if spec := c.SpecComputed - base.SpecComputed; spec*4 < uint64(movedTotal) {
		t.Errorf("waves filled only %d of %d mover-heavy recomputations: rounds fell back to serial",
			spec, movedTotal)
	}
	if c.SpecUsed+c.SpecWasted != c.SpecComputed {
		t.Errorf("speculation accounting leaks: computed=%d used=%d wasted=%d",
			c.SpecComputed, c.SpecUsed, c.SpecWasted)
	}
}

// The perf mechanism must actually engage and pay off: in the few-movers
// regime the waves precompute the dirty set and the serial loop consumes
// almost all of it; every speculated entry is either consumed (escrow
// committed) or voided — the accounting identity the Localized message
// faithfulness rests on.
func TestSequentialSpeculationEngages(t *testing.T) {
	n := 2500
	start, pitch := wsn.UnitLattice(n, 16)
	reg := region.UnitSquareKm()
	cfg := DefaultConfig(2)
	cfg.Order = Sequential
	cfg.Epsilon = pitch / 50
	cfg.Seed = 1
	cfg.Workers = 4
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		eng.Step()
	}
	c := eng.CacheCounters()
	if c.Waves == 0 || c.SpecComputed == 0 {
		t.Fatalf("speculation never engaged: %+v", c)
	}
	if c.SpecUsed+c.SpecWasted != c.SpecComputed {
		t.Errorf("speculation accounting leaks: computed=%d used=%d wasted=%d",
			c.SpecComputed, c.SpecUsed, c.SpecWasted)
	}
	if c.SpecUsed*2 < c.SpecComputed {
		t.Errorf("speculation mostly wasted: used %d of %d", c.SpecUsed, c.SpecComputed)
	}
}

// Workers on a Sequential engine must not leak into results — the colored
// sweep is pure speedup. (Kept from the pre-colored engine, where Sequential
// ignored Workers outright; the invariant is the same, the mechanism is now
// speculation + validation instead of ignoring the knob.)
func TestSequentialMessageAccountingUnderWaves(t *testing.T) {
	// Localized + Sequential + waves is the hardest cell: speculative ring
	// searches charge into escrow and only commit when consumed, so Messages
	// must come out exactly equal to the serial sweep's, per round and in
	// total.
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 80, rand.New(rand.NewSource(41)))
	cfg := DefaultConfig(2)
	cfg.Order = Sequential
	cfg.Mode = Localized
	cfg.Gamma = 0.25
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 12
	cfg.Seed = 41
	trace1, res1 := runWorkers(t, reg, start, cfg, 1)
	for _, w := range []int{2, 4, 8} {
		traceW, resW := runWorkers(t, reg, start, cfg, w)
		assertIdentical(t, fmt.Sprintf("workers=%d", w), trace1, traceW, res1, resW)
		if res1.Messages != resW.Messages {
			t.Errorf("workers=%d: message totals differ: %d vs %d", w, res1.Messages, resW.Messages)
		}
	}
}
