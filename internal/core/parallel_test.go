package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
	"laacad/internal/wsn"
)

// runWorkers executes a fixed-length run with the given worker count and
// returns the trace and finalized result for bitwise comparison.
func runWorkers(t *testing.T, reg *region.Region, start []geom.Point, cfg Config, workers int) ([]RoundStats, *Result) {
	t.Helper()
	cfg.Workers = workers
	eng, err := New(reg, start, cfg)
	if err != nil {
		t.Fatalf("New(workers=%d): %v", workers, err)
	}
	for r := 0; r < cfg.MaxRounds; r++ {
		if _, done := eng.Step(); done {
			break
		}
	}
	res, err := eng.Finalize()
	if err != nil {
		t.Fatalf("Finalize(workers=%d): %v", workers, err)
	}
	return eng.Trace(), res
}

func assertIdentical(t *testing.T, label string, trace1, traceW []RoundStats, res1, resW *Result) {
	t.Helper()
	if !reflect.DeepEqual(trace1, traceW) {
		t.Errorf("%s: traces differ", label)
	}
	if !reflect.DeepEqual(res1.Positions, resW.Positions) {
		t.Errorf("%s: final positions differ", label)
	}
	if !reflect.DeepEqual(res1.Radii, resW.Radii) {
		t.Errorf("%s: final radii differ", label)
	}
	if res1.Rounds != resW.Rounds || res1.Converged != resW.Converged {
		t.Errorf("%s: rounds/converged differ: (%d,%v) vs (%d,%v)",
			label, res1.Rounds, res1.Converged, resW.Rounds, resW.Converged)
	}
}

// The determinism contract: for any seed, size and coverage order, every
// worker count produces a bit-identical trajectory — same per-round trace,
// same final positions and radii — because each node's randomness is derived
// from (seed, round, node), never from scheduling order.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	reg := region.UnitSquareKm()
	seeds := []int64{1, 2, 3}
	sizes := []int{50, 200}
	ks := []int{1, 2, 3}
	if testing.Short() {
		seeds, sizes, ks = []int64{1}, []int{50}, []int{2}
	}
	workerCounts := []int{2, 3, runtime.NumCPU()}
	for _, seed := range seeds {
		for _, n := range sizes {
			for _, k := range ks {
				seed, n, k := seed, n, k // pre-1.22 loopvar semantics
				t.Run(fmt.Sprintf("seed=%d/n=%d/k=%d", seed, n, k), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(seed))
					start := region.PlaceUniform(reg, n, rng)
					cfg := DefaultConfig(k)
					cfg.Epsilon = 1e-3
					cfg.MaxRounds = 10 // equivalence needs rounds, not convergence
					cfg.Seed = seed
					trace1, res1 := runWorkers(t, reg, start, cfg, 1)
					for _, w := range workerCounts {
						traceW, resW := runWorkers(t, reg, start, cfg, w)
						assertIdentical(t, fmt.Sprintf("workers=%d", w), trace1, traceW, res1, resW)
					}
				})
			}
		}
	}
}

// Localized mode consumes randomness on two paths (Chebyshev centers and
// message-loss sampling); both must be schedule-independent — including the
// hop-limited ring mode, whose reply order feeds the loss draws.
func TestParallelLocalizedLossyDeterministic(t *testing.T) {
	for _, mode := range []wsn.RingQueryMode{wsn.RingGeometric, wsn.RingHopLimited} {
		mode := mode
		t.Run(fmt.Sprintf("ringmode=%d", mode), func(t *testing.T) {
			reg := region.UnitSquareKm()
			rng := rand.New(rand.NewSource(7))
			start := region.PlaceUniform(reg, 40, rng)
			cfg := DefaultConfig(2)
			cfg.Mode = Localized
			cfg.Gamma = 0.25
			cfg.RingMode = mode
			cfg.LossRate = 0.1
			cfg.Epsilon = 1e-3
			cfg.MaxRounds = 5
			cfg.Seed = 7
			trace1, res1 := runWorkers(t, reg, start, cfg, 1)
			traceR, resR := runWorkers(t, reg, start, cfg, 1) // repeat run: pure function of inputs
			assertIdentical(t, "rerun", trace1, traceR, res1, resR)
			traceW, resW := runWorkers(t, reg, start, cfg, runtime.NumCPU())
			assertIdentical(t, "localized+lossy", trace1, traceW, res1, resW)
			if res1.Messages != resW.Messages {
				t.Errorf("message totals differ: %d vs %d", res1.Messages, resW.Messages)
			}
		})
	}
}

// Workers must not leak into Sequential results: the colored sweep is pure
// speedup, so any worker count — including the NumCPU sentinel resolution —
// reproduces the serial sweep exactly. (The dedicated colored-sweep matrix
// lives in colored_test.go; this guards the historical entry point.)
func TestSequentialIgnoresWorkers(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(5))
	start := region.PlaceUniform(reg, 30, rng)
	cfg := DefaultConfig(2)
	cfg.Order = Sequential
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 8
	cfg.Seed = 5
	trace1, res1 := runWorkers(t, reg, start, cfg, 1)
	traceW, resW := runWorkers(t, reg, start, cfg, runtime.NumCPU())
	assertIdentical(t, "sequential", trace1, traceW, res1, resW)
}

// DebugRegions (the Finalize/inspection fan-out path) is deterministic too.
func TestParallelDebugRegionsDeterministic(t *testing.T) {
	reg := region.UnitSquareKm()
	rng := rand.New(rand.NewSource(11))
	start := region.PlaceUniform(reg, 60, rng)
	mk := func(workers int) *Engine {
		cfg := DefaultConfig(2)
		cfg.Seed = 11
		cfg.Workers = workers
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	r1 := mk(1).DebugRegions()
	rW := mk(runtime.NumCPU()).DebugRegions()
	if !reflect.DeepEqual(r1, rW) {
		t.Error("DebugRegions differs between worker counts")
	}
}

// The Workers knob survives validation verbatim — the -1 "all CPUs"
// sentinel must stay in the Config so a recorded run replays portably on a
// machine with a different core count (resolution happens per fan-out via
// parallel.Workers).
func TestWorkersSentinelPreserved(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 10, rand.New(rand.NewSource(1)))
	for _, w := range []int{-1, 0, 1, 4} {
		cfg := DefaultConfig(1)
		cfg.Workers = w
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Config().Workers; got != w {
			t.Errorf("Workers=%d came back as %d; sentinel must be preserved", w, got)
		}
	}
}
