package core

import (
	"math/rand"
	"testing"

	"laacad/internal/geom"
	"laacad/internal/region"
)

// BenchmarkTable2Round measures one centralized round at the Table II scale
// (180 nodes, k=4, 100×100 m area) — the dominant cost in the experiment
// harness.
func BenchmarkTable2Round(b *testing.B) {
	reg := region.Rect(0, 0, 100, 100)
	rng := rand.New(rand.NewSource(1))
	start := make([]geom.Point, 180)
	for i := range start {
		start[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	cfg := DefaultConfig(4)
	cfg.Epsilon = 0.02
	eng, err := New(reg, start, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
