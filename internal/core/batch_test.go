package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"laacad/internal/region"
	"laacad/internal/voronoi"
)

// The batch-kernel contract: the SoA pipeline (incremental rel slabs, lazy
// bisector memos, slab-resident clipping, rhoHint warm start) is semantically
// invisible. Across seeds, sizes, coverage orders, both modes, both update
// orders and every worker count, the batch engine's trace, final positions,
// radii AND message accounting are bit-identical to the scalar engine's
// (DisableBatch). This is the equivalence half of the PR's acceptance
// criteria; the scalar serial run is the oracle.
func TestBatchKernelMatchesScalarEngine(t *testing.T) {
	reg := region.UnitSquareKm()
	cells := []struct {
		seed int64
		n, k int
	}{{1, 60, 2}, {2, 150, 3}, {3, 90, 1}}
	modes := []Mode{Centralized, Localized}
	orders := []UpdateOrder{Synchronous, Sequential}
	if testing.Short() {
		cells = cells[:1]
	}
	for _, cell := range cells {
		for _, mode := range modes {
			for _, order := range orders {
				cell, mode, order := cell, mode, order
				t.Run(fmt.Sprintf("seed=%d/n=%d/k=%d/%v/%v", cell.seed, cell.n, cell.k, mode, order), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(cell.seed))
					start := region.PlaceUniform(reg, cell.n, rng)
					cfg := DefaultConfig(cell.k)
					cfg.Epsilon = 1e-3
					cfg.MaxRounds = 40
					cfg.Seed = cell.seed
					cfg.Mode = mode
					cfg.Order = order
					cfg.DisableBatch = true
					cfg.Workers = 0
					scalarTrace, scalarRes := runEngine(t, reg, start, cfg)

					cfg.DisableBatch = false
					for _, w := range []int{0, 3, runtime.NumCPU()} {
						cfg.Workers = w
						batchTrace, batchRes := runEngine(t, reg, start, cfg)
						assertIdentical(t, fmt.Sprintf("batch workers=%d", w),
							scalarTrace, batchTrace, scalarRes, batchRes)
						if batchRes.Messages != scalarRes.Messages {
							t.Errorf("batch workers=%d: messages %d, scalar %d",
								w, batchRes.Messages, scalarRes.Messages)
						}
					}
				})
			}
		}
	}
}

// The warm-start property behind the batch engine's steady-state win: the
// expanding exactness search returns a bit-identical region no matter where
// it starts. Starting at the node's last exactness radius (or far beyond the
// final radius) skips early doublings but cannot change the survivors —
// generators beyond the pruning bound leave the clipping walk untouched, and
// the exactness predicate 2·R̂ ≤ ρ is start-independent. Verified directly
// against the fallback start after the engine has populated rhoHint.
func TestHintStartMatchesFallbackStart(t *testing.T) {
	reg := region.UnitSquareKm()
	for _, cell := range []struct {
		seed int64
		n, k int
	}{{7, 120, 2}, {8, 200, 3}} {
		cell := cell
		t.Run(fmt.Sprintf("seed=%d/n=%d/k=%d", cell.seed, cell.n, cell.k), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(cell.seed))
			start := region.PlaceUniform(reg, cell.n, rng)
			cfg := DefaultConfig(cell.k)
			cfg.Epsilon = 1e-3
			cfg.Seed = cell.seed
			eng, err := New(reg, start, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 6; r++ {
				eng.Step()
			}
			eng.Network().Rebuild()
			s := NewScratch()
			for i := 0; i < cell.n; i++ {
				refs, _, rhat0 := centralizedRegionSoA(eng.Network(), reg, i, cfg.K, 0, s)
				fallback := voronoi.CompactRefs(&s.vor.Slab, refs)
				for _, hint := range []float64{eng.rhoHint[i], eng.rhoHint[i] * 8} {
					refs, _, rhat := centralizedRegionSoA(eng.Network(), reg, i, cfg.K, hint, s)
					warm := voronoi.CompactRefs(&s.vor.Slab, refs)
					if !reflect.DeepEqual(fallback, warm) {
						t.Fatalf("node %d: region differs for start radius %v", i, hint)
					}
					if rhat != rhat0 {
						t.Fatalf("node %d: rhat %v for start radius %v, fallback start %v",
							i, rhat, hint, rhat0)
					}
				}
			}
		})
	}
}

// The batch kernel must actually be live: a default-config engine computes
// its regions on the SoA pipeline (BatchNodes advances), and DisableBatch
// really does route everything back through the scalar kernel.
func TestBatchKernelEngages(t *testing.T) {
	reg := region.UnitSquareKm()
	start := region.PlaceUniform(reg, 50, rand.New(rand.NewSource(11)))
	for _, disable := range []bool{false, true} {
		cfg := DefaultConfig(2)
		cfg.Epsilon = 1e-3
		cfg.Seed = 11
		cfg.DisableBatch = disable
		eng, err := New(reg, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.Step()
		got := eng.CacheCounters().BatchNodes
		if disable && got != 0 {
			t.Errorf("DisableBatch engine computed %d nodes on the batch kernel, want 0", got)
		}
		if !disable && got == 0 {
			t.Error("default engine never used the batch kernel")
		}
	}
}
