package core

import (
	"math/rand"

	"laacad/internal/geom"
)

// nodeRNG returns the independent random stream for one node's
// message-loss sampling in one round (Localized mode; the Chebyshev-center
// computation is deterministic and draws nothing): a splitmix64 generator
// whose state is a mixed function of (seed, round, node). Deriving the
// stream from coordinates instead of drawing from a shared sequential
// source is what makes the parallel engine deterministic — a node's
// randomness depends only on what it is computing, never on which worker
// got there first, so any worker count and any scheduling order produce
// bit-identical trajectories.
//
// The generator is used directly as a rand.Source64 rather than feeding the
// mixed state to rand.NewSource, which would reduce it mod 2³¹−1 and
// collapse the stream space enough for distinct (round, node) pairs to
// collide over a long run. The mix/finalize primitives are shared with the
// deterministic-Welzl shuffle (geom.Mix64/geom.Finalize64) so the two
// cannot drift.
func nodeRNG(seed int64, round, node int) *rand.Rand {
	s := geom.Mix64(uint64(seed))
	s = geom.Mix64(s ^ uint64(round))
	s = geom.Mix64(s ^ uint64(node))
	return rand.New(&splitmix64{state: s})
}

// splitmix64 is the SplitMix64 generator [Steele, Lea, Flood 2014]: a full-
// period 2⁶⁴ sequence whose output passes BigCrush — more than adequate for
// loss sampling, and cheap to seed per (round, node).
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return geom.Finalize64(s.state)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }
