package laacad

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// These tests exercise the public façade end to end, the way a downstream
// user would.

func TestPublicQuickstartFlow(t *testing.T) {
	reg := UnitSquareKm()
	rng := rand.New(rand.NewSource(1))
	start := PlaceUniform(reg, 40, rng)

	cfg := DefaultConfig(2)
	cfg.Epsilon = 1e-3
	cfg.MaxRounds = 250
	res, err := Deploy(reg, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge in %d rounds", res.Rounds)
	}
	rep := VerifyCoverage(res.Positions, res.Radii, reg, 80)
	if !rep.KCovered(2) {
		t.Errorf("not 2-covered: %v", rep)
	}
	if res.MaxRadius() < res.MinRadius() {
		t.Error("radius extrema inverted")
	}
	model := DiskAreaEnergy{}
	if MaxLoad(res.Radii, model) <= 0 || TotalLoad(res.Radii, model) <= MaxLoad(res.Radii, model) {
		t.Error("load metrics inconsistent")
	}
	loads := make([]float64, len(res.Radii))
	for i, r := range res.Radii {
		loads[i] = model.Cost(r)
	}
	if j := JainIndex(loads); j < 0.5 || j > 1 {
		t.Errorf("Jain index %v out of expected range", j)
	}
}

func TestPublicRegions(t *testing.T) {
	for _, tc := range []struct {
		name string
		reg  *Region
	}{
		{"unit", UnitSquareKm()},
		{"rect", RectRegion(0, 0, 2, 1)},
		{"lshape", LShapeRegion()},
		{"cross", CrossRegion()},
		{"obstacle1", SquareWithCircularObstacle(Pt(0.5, 0.5), 0.1)},
		{"obstacles2", SquareWithTwoObstacles()},
	} {
		if tc.reg.Area() <= 0 {
			t.Errorf("%s: non-positive area", tc.name)
		}
	}
	if _, err := NewRegion(Polygon{Pt(0, 0), Pt(1, 1)}); err == nil {
		t.Error("degenerate region should error")
	}
	custom, err := NewRegion(Polygon{Pt(0, 0), Pt(2, 0), Pt(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(custom.Area()-2) > 1e-9 {
		t.Errorf("custom region area %v", custom.Area())
	}
}

func TestPublicVoronoi(t *testing.T) {
	reg := UnitSquareKm()
	sites := benchSites(12, 2)
	d, err := KOrderVoronoi(sites, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TotalArea()-reg.Area()) > 1e-6 {
		t.Errorf("diagram does not partition: %v", d.TotalArea())
	}
	var sum float64
	for _, s := range sites {
		sum += polysArea(DominatingRegion(s, sites, 2, reg))
	}
	if math.Abs(sum-2*reg.Area()) > 1e-6 {
		t.Errorf("dominating regions sum %v, want %v", sum, 2*reg.Area())
	}
}

func polysArea(polys []Polygon) float64 {
	var a float64
	for _, p := range polys {
		a += p.Area()
	}
	return a
}

func TestPublicSmallestEnclosingCircle(t *testing.T) {
	c := SmallestEnclosingCircle([]Point{Pt(0, 0), Pt(2, 0)})
	if !c.Center.Eq(Pt(1, 0)) || math.Abs(c.R-1) > 1e-9 {
		t.Errorf("got %v", c)
	}
}

func TestPublicBaselines(t *testing.T) {
	if v := BaiMinNodes2Coverage(1e4, 3.035); math.Abs(v-836) > 1 {
		t.Errorf("Bai formula = %v, want ≈836 (paper Table I)", v)
	}
	if v := AmmariLensNodes(3, 1e4, 8.77); math.Abs(v-318) > 2 {
		t.Errorf("Ammari formula = %v, want ≈318 (paper Table II)", v)
	}
	reg := UnitSquareKm()
	pts := TriangularCover(reg, 0.15)
	if len(pts) == 0 {
		t.Error("no lattice points")
	}
	radii := make([]float64, len(pts))
	for i := range radii {
		radii[i] = 0.15
	}
	if rep := VerifyCoverage(pts, radii, reg, 60); !rep.KCovered(1) {
		t.Errorf("triangular cover fails: %v", rep)
	}
}

func TestPublicMinNodes(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Epsilon = 3e-3
	cfg.MaxRounds = 80
	res, err := MinNodes(UnitSquareKm(), 0.3, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.N < 2 || res.MaxRadius > 0.3 {
		t.Errorf("min nodes N=%d R*=%v", res.N, res.MaxRadius)
	}
}

func TestPublicEngineStepAndRender(t *testing.T) {
	reg := UnitSquareKm()
	eng, err := NewEngine(reg, benchStart(reg, 15, 3), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := eng.Step()
	if stats.Round != 1 || stats.MaxCircumradius <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	res, err := eng.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	plot := RenderDeployment(reg, res.Positions, 30, 10)
	if !strings.Contains(plot, "o") {
		t.Error("deployment render missing nodes")
	}
	conv := RenderConvergence(res, 40, 8)
	if !strings.Contains(conv, "max circumradius") {
		t.Error("convergence render missing legend")
	}
}

func TestPublicLocalizedMode(t *testing.T) {
	reg := UnitSquareKm()
	cfg := DefaultConfig(1)
	cfg.Mode = Localized
	cfg.Gamma = 0.3
	cfg.RingMode = RingHopLimited
	cfg.Epsilon = 3e-3
	cfg.MaxRounds = 100
	res, err := Deploy(reg, benchStart(reg, 25, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Error("hop-limited localized run should account messages")
	}
}

func TestModeStringPublic(t *testing.T) {
	if Centralized.String() == Localized.String() {
		t.Error("modes should stringify differently")
	}
}
